"""repro: reproduction of "Cut to Fit: Tailoring the Partitioning to the Computation".

The package re-implements, in pure Python, the full experimental pipeline
of Kolokasis & Pratikakis' study of vertex-cut partitioning in GraphX:

* :mod:`repro.core` — the property-graph substrate and dataset statistics;
* :mod:`repro.datasets` — synthetic analogues of the paper's nine datasets;
* :mod:`repro.partitioning` — the six evaluated partitioners (plus
  extensions) and :mod:`repro.metrics` — the five partitioning metrics;
* :mod:`repro.engine` — a GraphX-like BSP engine with a simulated cluster
  cost model;
* :mod:`repro.algorithms` — PageRank, Connected Components, Triangle Count
  and SSSP on top of the engine;
* :mod:`repro.backends` — pluggable execution backends: the ``reference``
  cost-model simulator and the ``vectorized`` CSR/numpy kernels;
* :mod:`repro.session` — the unified experiment API: :class:`Session`
  (memoized dataset loads + partitioned-graph cache),
  :class:`ExperimentPlan` (the declarative grid planner) and
  :class:`ResultSet` (queryable, serialisable run records);
* :mod:`repro.analysis` — correlation analysis, the "cut to fit"
  partitioner advisor, and the legacy study entry points (now thin
  wrappers over the session planner);
* :mod:`repro.serve` — a long-lived HTTP query daemon over preloaded
  partitioned graphs: landmark-based distance estimates, batched
  multi-source exact SSSP, top-k PageRank, components and neighborhoods
  (``python -m repro.cli serve``).

Quickstart
----------
>>> from repro import Session
>>> session = Session(scale=0.2)
>>> results = (
...     session.plan()
...     .datasets("youtube")
...     .partitioners("2D", "DC")
...     .granularities(16)
...     .algorithms("PR")
...     .run()
... )
>>> results.best().partitioner in {"2D", "DC"}
True
>>> session.stats.partition_builds
2
"""

from ._version import __version__
from .algorithms import (
    AlgorithmResult,
    LandmarkMatrix,
    build_landmark_matrix,
    choose_landmarks,
    connected_components,
    degree_count,
    multi_source_distances,
    pagerank,
    run_algorithm,
    shortest_paths,
    total_triangles,
    triangle_count,
)
from .analysis import (
    ExperimentConfig,
    GranularityPoint,
    GranularitySweep,
    InfrastructureResult,
    Recommendation,
    RunRecord,
    load_records,
    recommend_empirically,
    recommend_partitioner,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
    save_records,
    sweep_granularity,
)
from .backends import (
    Backend,
    CSRGraph,
    available_backends,
    get_backend,
    register_backend,
    validate_backends,
)
from .core import Graph, GraphBuilder, GraphSummary, read_edge_list, summarize, write_edge_list
from .datasets import PAPER_DATASET_NAMES, load_all_datasets, load_dataset
from .engine import ClusterConfig, CostParameters, PartitionedGraph, paper_cluster, pregel
from .errors import (
    AnalysisError,
    BackendError,
    DatasetError,
    EngineError,
    GraphIOError,
    GraphValidationError,
    PartitioningError,
    ReproError,
)
from .metrics import PartitioningMetrics, compute_metrics
from .partitioning import (
    EXTENSION_PARTITIONER_NAMES,
    PAPER_PARTITIONER_NAMES,
    VertexMembership,
    canonical_partitioner_name,
    make_partitioner,
    paper_partitioners,
)
from .session import (
    ArtifactStore,
    CacheStats,
    ExperimentPlan,
    PlannedRun,
    ResultSet,
    Session,
    StoreInfo,
)

__all__ = [
    "__version__",
    "AlgorithmResult",
    "AnalysisError",
    "ArtifactStore",
    "Backend",
    "BackendError",
    "CSRGraph",
    "CacheStats",
    "ClusterConfig",
    "CostParameters",
    "DatasetError",
    "EngineError",
    "ExperimentConfig",
    "ExperimentPlan",
    "EXTENSION_PARTITIONER_NAMES",
    "GranularityPoint",
    "GranularitySweep",
    "Graph",
    "GraphBuilder",
    "GraphIOError",
    "GraphSummary",
    "GraphValidationError",
    "InfrastructureResult",
    "LandmarkMatrix",
    "PAPER_DATASET_NAMES",
    "PAPER_PARTITIONER_NAMES",
    "PartitionedGraph",
    "PartitioningError",
    "PartitioningMetrics",
    "PlannedRun",
    "Recommendation",
    "ReproError",
    "ResultSet",
    "RunRecord",
    "Session",
    "StoreInfo",
    "VertexMembership",
    "available_backends",
    "build_landmark_matrix",
    "canonical_partitioner_name",
    "choose_landmarks",
    "compute_metrics",
    "connected_components",
    "degree_count",
    "get_backend",
    "load_all_datasets",
    "load_dataset",
    "load_records",
    "make_partitioner",
    "multi_source_distances",
    "pagerank",
    "paper_cluster",
    "paper_partitioners",
    "pregel",
    "read_edge_list",
    "recommend_empirically",
    "register_backend",
    "recommend_partitioner",
    "run_algorithm",
    "run_algorithm_study",
    "run_infrastructure_study",
    "run_partitioning_study",
    "save_records",
    "shortest_paths",
    "summarize",
    "sweep_granularity",
    "total_triangles",
    "triangle_count",
    "validate_backends",
    "write_edge_list",
]
