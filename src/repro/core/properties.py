"""Structural statistics used to characterise datasets (Table 1, Figures 1-2).

Every statistic the paper reports for its datasets is computed here:
edge symmetry, the fraction of vertices with zero in/out degree, the global
triangle count, weakly and strongly connected components, the diameter
(infinite when the graph is disconnected), and an on-disk size estimate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "GraphSummary",
    "symmetry_percent",
    "zero_in_percent",
    "zero_out_percent",
    "triangle_count",
    "per_vertex_triangles",
    "weakly_connected_components",
    "num_weakly_connected_components",
    "strongly_connected_components",
    "num_strongly_connected_components",
    "diameter",
    "estimated_size_bytes",
    "degree_histogram",
    "degree_ratio_cdf",
    "summarize",
]


# ----------------------------------------------------------------------
# Edge reciprocity and leaf vertices
# ----------------------------------------------------------------------
def symmetry_percent(graph: Graph) -> float:
    """Percentage of edges whose reverse edge is also present.

    Undirected datasets stored as reciprocated arcs therefore report 100%.
    Self-loops count as symmetric (their reverse is themselves).
    An empty graph reports 100% by convention.
    """
    if graph.num_edges == 0:
        return 100.0
    edge_set = graph.edge_set()
    reciprocated = sum(1 for (s, d) in edge_set if (d, s) in edge_set)
    return 100.0 * reciprocated / len(edge_set)


def zero_in_percent(graph: Graph) -> float:
    """Percentage of vertices with no incoming edge."""
    if graph.num_vertices == 0:
        return 0.0
    in_deg = graph.in_degrees()
    zero = sum(1 for d in in_deg.values() if d == 0)
    return 100.0 * zero / graph.num_vertices


def zero_out_percent(graph: Graph) -> float:
    """Percentage of vertices with no outgoing edge."""
    if graph.num_vertices == 0:
        return 0.0
    out_deg = graph.out_degrees()
    zero = sum(1 for d in out_deg.values() if d == 0)
    return 100.0 * zero / graph.num_vertices


# ----------------------------------------------------------------------
# Triangles
# ----------------------------------------------------------------------
def per_vertex_triangles(graph: Graph) -> Dict[int, int]:
    """Number of triangles through each vertex of the canonicalised graph.

    The graph is treated as undirected and simple (GraphX's TriangleCount
    does the same canonicalisation).
    """
    canonical = graph.canonicalized()
    adjacency = canonical.adjacency(direction="both")
    counts = {v: 0 for v in adjacency}
    for u, v in canonical.edge_pairs():
        smaller, larger = (u, v) if len(adjacency[u]) <= len(adjacency[v]) else (v, u)
        common = adjacency[smaller] & adjacency[larger]
        for w in common:
            counts[u] += 1
            counts[v] += 1
            counts[w] += 1
    # Each triangle is seen once per edge it owns, i.e. 3 times in the loop
    # above; each sighting credited all three corners, so divide by 3.
    return {v: c // 3 for v, c in counts.items()}


def triangle_count(graph: Graph) -> int:
    """Total number of distinct triangles in the canonicalised graph."""
    canonical = graph.canonicalized()
    adjacency = canonical.adjacency(direction="both")
    total = 0
    for u, v in canonical.edge_pairs():
        smaller, larger = (u, v) if len(adjacency[u]) <= len(adjacency[v]) else (v, u)
        total += len(adjacency[smaller] & adjacency[larger])
    return total // 3


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------
def weakly_connected_components(graph: Graph) -> Dict[int, int]:
    """Label every vertex with the smallest vertex id of its weak component."""
    adjacency = graph.adjacency(direction="both")
    labels: Dict[int, int] = {}
    for start in adjacency:
        if start in labels:
            continue
        queue = deque([start])
        members = [start]
        seen = {start}
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    members.append(neighbour)
                    queue.append(neighbour)
        label = min(members)
        for node in members:
            labels[node] = label
    return labels


def num_weakly_connected_components(graph: Graph) -> int:
    """Number of weakly connected components."""
    labels = weakly_connected_components(graph)
    return len(set(labels.values())) if labels else 0


def strongly_connected_components(graph: Graph) -> List[List[int]]:
    """Strongly connected components via an iterative Tarjan algorithm."""
    adjacency = graph.adjacency(direction="out")
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    components: List[List[int]] = []

    for root in adjacency:
        if root in index:
            continue
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def num_strongly_connected_components(graph: Graph) -> int:
    """Number of strongly connected components."""
    return len(strongly_connected_components(graph))


# ----------------------------------------------------------------------
# Diameter
# ----------------------------------------------------------------------
def _bfs_eccentricity(adjacency: Dict[int, set], source: int) -> Tuple[int, int]:
    """Return ``(eccentricity, furthest_vertex)`` of ``source`` by BFS."""
    dist = {source: 0}
    queue = deque([source])
    furthest = source
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in dist:
                dist[neighbour] = dist[node] + 1
                if dist[neighbour] > dist[furthest]:
                    furthest = neighbour
                queue.append(neighbour)
    return dist[furthest], furthest


def diameter(graph: Graph, exact_limit: int = 2000) -> float:
    """Diameter of the undirected view of the graph.

    Returns ``math.inf`` when the graph has more than one weak component
    (the convention the paper uses in Table 1).  For graphs with at most
    ``exact_limit`` vertices the diameter is exact (BFS from every vertex);
    larger graphs use the double-sweep lower bound, which is exact on trees
    and very tight on small-world graphs.
    """
    if graph.num_vertices == 0:
        return 0.0
    if num_weakly_connected_components(graph) > 1:
        return math.inf
    adjacency = graph.adjacency(direction="both")
    vertices = list(adjacency)
    if len(vertices) <= exact_limit:
        return float(max(_bfs_eccentricity(adjacency, v)[0] for v in vertices))
    # Double sweep: BFS from an arbitrary vertex, then from the furthest
    # vertex found; repeat a few times to tighten the bound.
    best = 0
    start = vertices[0]
    for _ in range(4):
        ecc, far = _bfs_eccentricity(adjacency, start)
        best = max(best, ecc)
        start = far
    return float(best)


# ----------------------------------------------------------------------
# Size and distributions
# ----------------------------------------------------------------------
def estimated_size_bytes(graph: Graph, bytes_per_edge: int = 16) -> int:
    """Approximate on-disk size of the edge list (two int64 ids per edge)."""
    return graph.num_edges * bytes_per_edge


def degree_histogram(graph: Graph, direction: str = "in") -> Dict[int, int]:
    """Histogram ``{degree: number of vertices with that degree}``.

    ``direction`` is ``"in"``, ``"out"`` or ``"both"``; this is the data
    behind Figure 1 of the paper.
    """
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    elif direction == "both":
        degrees = graph.degrees()
    else:
        raise ValueError(f"unknown direction {direction!r}")
    histogram: Dict[int, int] = {}
    for value in degrees.values():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def degree_ratio_cdf(graph: Graph, points: Optional[Sequence[float]] = None) -> List[Tuple[float, float]]:
    """CDF of the out-degree / in-degree ratio over all vertices (Figure 2).

    Vertices with zero in-degree are assigned a ratio of ``+inf`` and count
    toward the tail of the distribution; vertices with zero out-degree get
    a ratio of 0.  Returns ``[(ratio, cumulative_fraction), ...]`` sorted by
    ratio.  When ``points`` is given, the CDF is evaluated at those ratios
    instead of at every observed value.
    """
    in_deg = graph.in_degrees()
    out_deg = graph.out_degrees()
    ratios = []
    for vertex in in_deg:
        i, o = in_deg[vertex], out_deg[vertex]
        if i == 0 and o == 0:
            ratios.append(1.0)
        elif i == 0:
            ratios.append(math.inf)
        else:
            ratios.append(o / i)
    ratios.sort()
    n = len(ratios)
    if n == 0:
        return []
    if points is None:
        seen = []
        cdf = []
        for idx, value in enumerate(ratios, start=1):
            if seen and seen[-1] == value:
                cdf[-1] = (value, idx / n)
            else:
                seen.append(value)
                cdf.append((value, idx / n))
        return cdf
    result = []
    ratios_arr = np.asarray([r if math.isfinite(r) else np.inf for r in ratios])
    for point in points:
        result.append((float(point), float(np.mean(ratios_arr <= point))))
    return result


# ----------------------------------------------------------------------
# Summary (one Table-1 row)
# ----------------------------------------------------------------------
@dataclass
class GraphSummary:
    """All the per-dataset statistics the paper reports in Table 1."""

    name: str
    num_vertices: int
    num_edges: int
    symmetry_percent: float
    zero_in_percent: float
    zero_out_percent: float
    triangles: int
    connected_components: int
    diameter: float
    size_bytes: int
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Return the summary as a flat dict suitable for tabulation."""
        return {
            "dataset": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "symm_pct": round(self.symmetry_percent, 2),
            "zero_in_pct": round(self.zero_in_percent, 2),
            "zero_out_pct": round(self.zero_out_percent, 2),
            "triangles": self.triangles,
            "components": self.connected_components,
            "diameter": self.diameter,
            "size_bytes": self.size_bytes,
        }


def summarize(graph: Graph, name: Optional[str] = None) -> GraphSummary:
    """Compute a full :class:`GraphSummary` (one row of Table 1)."""
    return GraphSummary(
        name=name or graph.name or "unnamed",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        symmetry_percent=symmetry_percent(graph),
        zero_in_percent=zero_in_percent(graph),
        zero_out_percent=zero_out_percent(graph),
        triangles=triangle_count(graph),
        connected_components=num_weakly_connected_components(graph),
        diameter=diameter(graph),
        size_bytes=estimated_size_bytes(graph),
    )
