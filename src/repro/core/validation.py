"""Validation helpers shared by the public entry points."""

from __future__ import annotations

from ..errors import GraphValidationError, PartitioningError
from .graph import Graph

__all__ = ["require_non_empty", "require_positive_partitions"]


def require_non_empty(graph: Graph, context: str = "operation") -> None:
    """Raise :class:`GraphValidationError` if the graph has no edges."""
    if graph.num_edges == 0:
        raise GraphValidationError(f"{context} requires a graph with at least one edge")


def require_positive_partitions(num_partitions: int) -> None:
    """Raise :class:`PartitioningError` unless ``num_partitions`` >= 1."""
    if not isinstance(num_partitions, int) or isinstance(num_partitions, bool):
        raise PartitioningError("num_partitions must be an integer")
    if num_partitions < 1:
        raise PartitioningError(f"num_partitions must be >= 1, got {num_partitions}")
