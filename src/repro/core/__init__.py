"""Property-graph substrate: graph data model, builders, I/O and statistics."""

from .builder import GraphBuilder
from .graph import Edge, Graph
from .io import read_edge_list, write_edge_list
from .sampling import edge_sample, forest_fire_sample, induced_subgraph
from .properties import (
    GraphSummary,
    degree_histogram,
    degree_ratio_cdf,
    diameter,
    estimated_size_bytes,
    num_strongly_connected_components,
    num_weakly_connected_components,
    per_vertex_triangles,
    strongly_connected_components,
    summarize,
    symmetry_percent,
    triangle_count,
    weakly_connected_components,
    zero_in_percent,
    zero_out_percent,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphBuilder",
    "GraphSummary",
    "read_edge_list",
    "edge_sample",
    "forest_fire_sample",
    "induced_subgraph",
    "write_edge_list",
    "degree_histogram",
    "degree_ratio_cdf",
    "diameter",
    "estimated_size_bytes",
    "num_strongly_connected_components",
    "num_weakly_connected_components",
    "per_vertex_triangles",
    "strongly_connected_components",
    "summarize",
    "symmetry_percent",
    "triangle_count",
    "weakly_connected_components",
    "zero_in_percent",
    "zero_out_percent",
]
