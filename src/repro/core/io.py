"""Reading and writing edge-list files.

The SNAP datasets the paper uses are plain whitespace-separated edge lists
with ``#`` comment lines; this module reads and writes that format so that
real SNAP files can be dropped in as a replacement for the synthetic
analogues shipped in :mod:`repro.datasets`.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from ..errors import GraphIOError
from .graph import Graph

__all__ = ["PathLike", "atomic_write_bytes", "read_edge_list", "write_edge_list"]

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_bytes(path: PathLike, data: bytes, make_parents: bool = False) -> None:
    """Write ``data`` to ``path`` via a temporary sibling and ``os.replace``.

    Readers never observe a half-written file: they see either the old
    contents or the new ones, even across concurrent writers and killed
    processes.  ``make_parents`` creates missing parent directories (the
    artifact store's layout) — by default a missing directory is an
    :class:`OSError`, like a plain ``open`` for write.  The ``.part``
    suffix keeps in-flight files out of directory listings that filter by
    extension.  Raises plain :class:`OSError` — callers wrap it in their
    layer's error type.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    if make_parents:
        os.makedirs(directory, exist_ok=True)
    # Not mkstemp: its private 0600 mode would stick to the published file.
    # O_CREAT with mode 0o666 lets the kernel apply the process umask at
    # create time, giving the same permissions a plain open() would have.
    tmp_path = os.path.join(directory, f".tmp-{os.getpid()}-{os.urandom(6).hex()}.part")
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
    try:
        # Adoption can fail (allocation, interpreter shutdown); until the
        # file object owns fd, it must be closed here or it leaks.
        handle = os.fdopen(fd, "wb")
    except BaseException:
        os.close(fd)
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    try:
        with handle:
            handle.write(data)
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def read_edge_list(path: PathLike, delimiter: Optional[str] = None, name: str = "") -> Graph:
    """Read a SNAP-style edge list file into a :class:`Graph`.

    Lines starting with ``#`` or ``%`` are treated as comments.  Each other
    line must contain at least two integer fields (source and destination);
    any additional fields are ignored.

    Implemented on the chunked reader from :mod:`repro.ooc.chunks` (the
    seed appended two Python ints per edge into ever-growing lists), so
    parsing runs in bounded batches; accepted values and ``GraphIOError``
    diagnostics are identical to the seed loop.
    """
    # Imported lazily: repro.ooc pulls in the shard/session stack, which
    # itself imports this module.
    from ..ooc.chunks import EdgeListChunkSource, materialize

    source = EdgeListChunkSource(path, delimiter=delimiter)
    return materialize(source, name=name or os.path.basename(str(path)))


def write_edge_list(graph: Graph, path: PathLike, delimiter: str = "\t", header: bool = True) -> None:
    """Write a graph as a SNAP-style edge list file."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            if header:
                handle.write(f"# {graph.name or 'graph'}\n")
                handle.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
            for s, d in graph.edge_pairs():
                handle.write(f"{s}{delimiter}{d}\n")
    except OSError as exc:
        raise GraphIOError(f"cannot write edge list {path}: {exc}") from exc
