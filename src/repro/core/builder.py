"""Incremental construction of :class:`~repro.core.graph.Graph` objects."""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import GraphValidationError
from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and isolated vertices, then builds an immutable graph.

    Example
    -------
    >>> builder = GraphBuilder(name="toy")
    >>> builder.add_edge(0, 1).add_edge(1, 2).add_vertex(7)
    GraphBuilder(edges=2, vertices=1)
    >>> graph = builder.build()
    >>> graph.num_vertices, graph.num_edges
    (4, 2)
    """

    def __init__(self, name: str = "") -> None:
        self._src = []
        self._dst = []
        self._vertices = []
        self._name = name

    def add_edge(self, src: int, dst: int) -> "GraphBuilder":
        """Add one directed edge; returns ``self`` for chaining."""
        if src < 0 or dst < 0:
            raise GraphValidationError("vertex ids must be non-negative")
        self._src.append(int(src))
        self._dst.append(int(dst))
        return self

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "GraphBuilder":
        """Add many ``(src, dst)`` pairs; returns ``self`` for chaining."""
        for src, dst in edges:
            self.add_edge(src, dst)
        return self

    def add_vertex(self, vertex_id: int) -> "GraphBuilder":
        """Register a vertex that may have no edges; returns ``self``."""
        if vertex_id < 0:
            raise GraphValidationError("vertex ids must be non-negative")
        self._vertices.append(int(vertex_id))
        return self

    def add_undirected_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add both ``u -> v`` and ``v -> u``; returns ``self``."""
        return self.add_edge(u, v).add_edge(v, u)

    @property
    def num_pending_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._src)

    def build(self) -> Graph:
        """Create the immutable :class:`Graph` from the accumulated edges."""
        return Graph(self._src, self._dst, vertices=self._vertices, name=self._name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphBuilder(edges={len(self._src)}, vertices={len(self._vertices)})"
