"""Directed property-graph substrate.

The :class:`Graph` class is the in-memory edge-list representation used by
every other subsystem (partitioners, the BSP engine, dataset generators).
It intentionally mirrors the GraphX data model from the paper: a graph is a
bag of directed edges identified by 64-bit integer vertex ids; the vertex
set is the union of all edge endpoints plus any explicitly supplied
isolated vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphValidationError

__all__ = ["Edge", "Graph"]


@dataclass(frozen=True)
class Edge:
    """A single directed edge ``src -> dst``."""

    src: int
    dst: int

    def reversed(self) -> "Edge":
        """Return the edge pointing in the opposite direction."""
        return Edge(self.dst, self.src)

    def canonical(self) -> "Edge":
        """Return the edge with endpoints ordered so that ``src <= dst``."""
        if self.src <= self.dst:
            return self
        return Edge(self.dst, self.src)


class Graph:
    """A directed multigraph stored as parallel ``src``/``dst`` arrays.

    Parameters
    ----------
    src, dst:
        Parallel sequences of non-negative integer vertex ids.  Each pair
        ``(src[i], dst[i])`` is one directed edge.  Duplicate edges are
        preserved (GraphX keeps them too).
    vertices:
        Optional explicit vertex ids.  Endpoints of edges are always part
        of the vertex set; ids listed here that touch no edge become
        isolated vertices.
    name:
        Optional human-readable dataset name used in reports.
    """

    def __init__(
        self,
        src: Sequence[int],
        dst: Sequence[int],
        vertices: Optional[Sequence[int]] = None,
        name: str = "",
    ) -> None:
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.ndim != 1 or dst_arr.ndim != 1:
            raise GraphValidationError("src and dst must be one-dimensional")
        if src_arr.shape[0] != dst_arr.shape[0]:
            raise GraphValidationError(
                "src and dst must have the same length "
                f"(got {src_arr.shape[0]} and {dst_arr.shape[0]})"
            )
        if src_arr.size and (src_arr.min() < 0 or dst_arr.min() < 0):
            raise GraphValidationError("vertex ids must be non-negative")

        self._src = src_arr
        self._dst = dst_arr
        self.name = name
        # Derived views are cached per instance: the edge arrays are
        # immutable after construction, so recomputation can never change
        # the answer.  Degree/adjacency accessors hand out copies so
        # callers may mutate what they receive.
        self._degree_cache: dict = {}
        self._adjacency_cache: dict = {}
        self._csr_cache = None

        endpoint_ids = np.concatenate([src_arr, dst_arr]) if src_arr.size else np.empty(0, np.int64)
        if vertices is not None:
            extra = np.asarray(list(vertices), dtype=np.int64)
            if extra.size and extra.min() < 0:
                raise GraphValidationError("vertex ids must be non-negative")
            endpoint_ids = np.concatenate([endpoint_ids, extra])
        self._vertex_ids = np.unique(endpoint_ids)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        vertices: Optional[Sequence[int]] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        pairs = list(edges)
        if pairs:
            src, dst = zip(*pairs)
        else:
            src, dst = (), ()
        return cls(src, dst, vertices=vertices, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def src(self) -> np.ndarray:
        """Source vertex id of every edge (read-only view)."""
        return self._src

    @property
    def dst(self) -> np.ndarray:
        """Destination vertex id of every edge (read-only view)."""
        return self._dst

    @property
    def vertex_ids(self) -> np.ndarray:
        """Sorted array of all vertex ids."""
        return self._vertex_ids

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices."""
        return int(self._vertex_ids.size)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (duplicates included)."""
        return int(self._src.size)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as :class:`Edge` objects."""
        for s, d in zip(self._src.tolist(), self._dst.tolist()):
            yield Edge(s, d)

    def edge_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as plain ``(src, dst)`` tuples."""
        for s, d in zip(self._src.tolist(), self._dst.tolist()):
            yield (s, d)

    def edge_set(self) -> frozenset:
        """Return the set of distinct ``(src, dst)`` pairs."""
        return frozenset(zip(self._src.tolist(), self._dst.tolist()))

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "graph"
        return f"Graph({label!r}, vertices={self.num_vertices}, edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> dict:
        """Return ``{vertex_id: out-degree}`` for every vertex (zeros included)."""
        return self._cached_degree_map("out", self._src)

    def in_degrees(self) -> dict:
        """Return ``{vertex_id: in-degree}`` for every vertex (zeros included)."""
        return self._cached_degree_map("in", self._dst)

    def degrees(self) -> dict:
        """Return ``{vertex_id: total degree}`` (in + out) for every vertex."""
        out = self.out_degrees()
        for v, d in self.in_degrees().items():
            out[v] += d
        return out

    def _cached_degree_map(self, key: str, endpoints: np.ndarray) -> dict:
        cached = self._degree_cache.get(key)
        if cached is None:
            cached = self._degree_map(endpoints)
            self._degree_cache[key] = cached
        return dict(cached)

    def _degree_map(self, endpoints: np.ndarray) -> dict:
        result = {int(v): 0 for v in self._vertex_ids.tolist()}
        if endpoints.size:
            ids, counts = np.unique(endpoints, return_counts=True)
            for v, c in zip(ids.tolist(), counts.tolist()):
                result[int(v)] = int(c)
        return result

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Return the graph with every edge direction flipped."""
        return Graph(self._dst, self._src, vertices=self._vertex_ids, name=self.name)

    def deduplicated(self) -> "Graph":
        """Return the graph with duplicate directed edges removed."""
        if not self.num_edges:
            return Graph([], [], vertices=self._vertex_ids, name=self.name)
        stacked = np.stack([self._src, self._dst], axis=1)
        unique = np.unique(stacked, axis=0)
        return Graph(unique[:, 0], unique[:, 1], vertices=self._vertex_ids, name=self.name)

    def canonicalized(self) -> "Graph":
        """Return an undirected view: endpoints sorted, duplicates and self-loops removed.

        This mirrors how GraphX's TriangleCount canonicalises the graph
        before counting.
        """
        if not self.num_edges:
            return Graph([], [], vertices=self._vertex_ids, name=self.name)
        lo = np.minimum(self._src, self._dst)
        hi = np.maximum(self._src, self._dst)
        keep = lo != hi
        stacked = np.stack([lo[keep], hi[keep]], axis=1)
        if stacked.size:
            stacked = np.unique(stacked, axis=0)
            return Graph(stacked[:, 0], stacked[:, 1], vertices=self._vertex_ids, name=self.name)
        return Graph([], [], vertices=self._vertex_ids, name=self.name)

    def symmetrized(self) -> "Graph":
        """Return the graph with every edge reciprocated (both directions present)."""
        src = np.concatenate([self._src, self._dst])
        dst = np.concatenate([self._dst, self._src])
        graph = Graph(src, dst, vertices=self._vertex_ids, name=self.name)
        return graph.deduplicated()

    def adjacency(self, direction: str = "out") -> dict:
        """Return an adjacency map ``{vertex: set(neighbours)}``.

        ``direction`` is ``"out"`` (successors), ``"in"`` (predecessors) or
        ``"both"`` (union of the two).
        """
        if direction not in ("out", "in", "both"):
            raise GraphValidationError(f"unknown direction {direction!r}")
        cached = self._adjacency_cache.get(direction)
        if cached is None:
            cached = {int(v): set() for v in self._vertex_ids.tolist()}
            for s, d in zip(self._src.tolist(), self._dst.tolist()):
                if direction in ("out", "both"):
                    cached[s].add(d)
                if direction in ("in", "both"):
                    cached[d].add(s)
            self._adjacency_cache[direction] = cached
        return {v: set(neighbours) for v, neighbours in cached.items()}

    def csr(self):
        """Return the :class:`~repro.backends.csr.CSRGraph` view of this graph.

        The compressed-sparse-row view (both out- and in-orientations) is
        built once and cached on the instance; it is the input type of the
        vectorized execution backend.
        """
        if self._csr_cache is None:
            from ..backends.csr import CSRGraph

            self._csr_cache = CSRGraph.from_graph(self)
        return self._csr_cache
