"""Graph sampling utilities.

The paper's datasets are themselves samples: the SNAP graphs are crawled
sub-graphs and the follow graphs were collected with a forest-fire style
crawl (which is what produces the large fractions of zero-in/zero-out
"leaf" vertices Table 1 reports).  These helpers let users carve the same
kinds of samples out of any graph, e.g. to shrink a real SNAP edge list to
simulation size while preserving its crawl-like structure.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from ..errors import GraphValidationError
from .graph import Graph

__all__ = ["forest_fire_sample", "edge_sample", "induced_subgraph"]


def induced_subgraph(graph: Graph, vertices) -> Graph:
    """Return the subgraph induced by ``vertices`` (edges with both endpoints kept)."""
    keep: Set[int] = {int(v) for v in vertices}
    edges = [(s, d) for s, d in graph.edge_pairs() if s in keep and d in keep]
    return Graph.from_edges(edges, vertices=sorted(keep), name=f"{graph.name}-induced")


def edge_sample(graph: Graph, fraction: float, seed: int = 0) -> Graph:
    """Keep every edge independently with probability ``fraction``."""
    if not 0.0 < fraction <= 1.0:
        raise GraphValidationError("fraction must be in (0, 1]")
    rng = random.Random(seed)
    edges = [(s, d) for s, d in graph.edge_pairs() if rng.random() < fraction]
    return Graph.from_edges(edges, name=f"{graph.name}-edges-{fraction:g}")


def forest_fire_sample(
    graph: Graph,
    target_vertices: int,
    forward_probability: float = 0.7,
    backward_probability: float = 0.2,
    seed: int = 0,
    max_restarts: Optional[int] = None,
) -> Graph:
    """Forest-fire sampling (Leskovec-style) of roughly ``target_vertices`` vertices.

    Starting from random seeds, the "fire" burns a geometrically distributed
    number of out-neighbours (and, with lower probability, in-neighbours) of
    every burned vertex; the returned graph is the subgraph induced by the
    burned vertices.  Like the crawls behind the paper's follow datasets,
    the sample keeps hubs with high probability and produces many leaf
    vertices at the frontier.
    """
    if target_vertices < 1:
        raise GraphValidationError("target_vertices must be >= 1")
    if not 0.0 <= forward_probability < 1.0:
        raise GraphValidationError("forward_probability must be in [0, 1)")
    if not 0.0 <= backward_probability < 1.0:
        raise GraphValidationError("backward_probability must be in [0, 1)")
    if graph.num_vertices == 0:
        raise GraphValidationError("cannot sample an empty graph")

    rng = random.Random(seed)
    out_adjacency = graph.adjacency("out")
    in_adjacency = graph.adjacency("in")
    all_vertices = graph.vertex_ids.tolist()
    target = min(target_vertices, len(all_vertices))
    max_restarts = max_restarts if max_restarts is not None else 10 * target

    burned: Set[int] = set()
    restarts = 0
    while len(burned) < target and restarts < max_restarts:
        restarts += 1
        seed_vertex = rng.choice(all_vertices)
        frontier = [seed_vertex]
        burned.add(seed_vertex)
        while frontier and len(burned) < target:
            vertex = frontier.pop()
            for neighbours, probability in (
                (out_adjacency[vertex], forward_probability),
                (in_adjacency[vertex], backward_probability),
            ):
                unburned = [n for n in neighbours if n not in burned]
                rng.shuffle(unburned)
                # Geometric number of neighbours to burn.
                burn_count = 0
                while rng.random() < probability:
                    burn_count += 1
                for neighbour in unburned[:burn_count]:
                    if len(burned) >= target:
                        break
                    burned.add(neighbour)
                    frontier.append(neighbour)

    sample = induced_subgraph(graph, burned)
    sample.name = f"{graph.name}-forest-fire"
    return sample
