"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class when they do not care about the
specific failure mode.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphValidationError(ReproError):
    """Raised when a graph or edge list fails structural validation."""


class GraphIOError(ReproError):
    """Raised when reading or writing a graph file fails."""


class PartitioningError(ReproError):
    """Raised when a partitioning strategy is misconfigured or misused."""


class EngineError(ReproError):
    """Raised when the BSP execution engine is misconfigured or fails."""


class BackendError(ReproError):
    """Raised when an execution backend is unknown, misused or produces
    results that disagree with the reference backend."""


class DatasetError(ReproError):
    """Raised when a dataset specification or generator is invalid."""


class AnalysisError(ReproError):
    """Raised when an experiment or analysis routine is misconfigured."""


class StaticCheckError(ReproError):
    """Raised when ``repro check`` is misconfigured (unknown rule id,
    unreadable path or baseline, unparseable source)."""
