"""Command-line interface for the reproduction.

Provides nine sub-commands mirroring the evaluation workflow::

    python -m repro.cli characterize                 # Table 1
    python -m repro.cli metrics --partitions 128     # Table 2 / 3
    python -m repro.cli run --algorithm PR --partitions 128
    python -m repro.cli sweep --algorithms PR CC --partitions 128 256
    python -m repro.cli advise --dataset orkut --algorithm PR
    python -m repro.cli ingest --dataset pokec --cache-dir .repro-cache
    python -m repro.cli cache info --cache-dir .repro-cache
    python -m repro.cli serve --datasets youtube --partitions 16
    python -m repro.cli check --list-rules           # static analysis

``sweep`` is the grid front-end of the :mod:`repro.session` planner: it
covers multi-algorithm x multi-granularity grids with one shared
partition cache, supports ``--workers N`` with ``--executor
thread|process`` (threads share one in-memory session; processes ship
cells to worker interpreters for true multi-core execution), and
``--dry-run`` to print the planned cells and cache-hit estimate without
executing anything.  ``serve`` starts the long-lived query daemon of
:mod:`repro.serve`: preloaded partitioned graphs plus a
landmark-distance index answer distance / PageRank / component /
neighborhood queries over HTTP, with concurrent exact-distance requests
coalesced into single multi-source sweeps (with ``--cache-dir``,
restarts are warm).  ``--cache-dir DIR`` attaches a persistent
:class:`~repro.session.store.ArtifactStore`: placements, landmark
choices and completed cells survive the process, so repeating — or
resuming an interrupted — sweep re-runs only what is missing
(``--resume`` makes that expectation explicit and fails without a cache
directory).  ``ingest`` is the out-of-core front door of
:mod:`repro.ooc`: it streams an edge-list file, a catalog dataset or a
synthetic generator through a streaming partitioner in bounded chunks and
publishes the result as a content-addressed *shard* artifact — per-
partition edge files that later runs memory-map instead of loading, so
``repro run --out-of-core`` (PR/CC/SSSP on the reference backend)
executes graphs larger than RAM with bit-identical placements, vertex
values and superstep counters.  ``cache`` inspects (``info``) or empties
(``clear``) such a store, shards included.  ``check`` runs the project-native static analyser of
:mod:`repro.devtools` — the REP rules encoding the engine's invariants —
and exits 1 on any finding that is neither ``# repro: noqa[REP###]``
suppressed nor grandfathered in a ``--baseline`` JSON file.

All sub-commands accept ``--scale`` to shrink or grow the synthetic
datasets and ``--seed`` for reproducibility; both global flags are valid
before *and* after the sub-command name.  Library failures
(:class:`~repro.errors.ReproError`) are reported as a one-line message on
stderr with exit code 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .algorithms.registry import run_algorithm
from .analysis.advisor import recommend_empirically, recommend_partitioner
from .analysis.correlation import correlation_table
from .analysis.experiments import (
    ExperimentConfig,
    run_algorithm_study,
    run_partitioning_study,
)
from .analysis.results import best_partitioner_per_dataset, records_to_rows
from .backends import available_backends, get_backend
from .datasets.catalog import PAPER_DATASET_NAMES, get_spec, load_dataset
from .datasets.characterization import build_table1, format_table1
from .engine.partitioned_graph import PartitionedGraph
from .errors import AnalysisError, PartitioningError, ReproError
from .metrics.report import format_metrics_table, format_table
from .partitioning.registry import PAPER_PARTITIONER_NAMES, canonical_partitioner_name
from .session import ArtifactStore, Session

__all__ = [
    "DEFAULT_ADVISE_PARTITIONS",
    "SWEEP_LANDMARK_COUNT",
    "main",
    "build_parser",
]

#: Partition count used by ``advise --backend`` when ``--partitions`` is omitted.
DEFAULT_ADVISE_PARTITIONS = 16


def _partitioner_name(name: str) -> str:
    """argparse type: resolve strategy names case-insensitively ("rvc" -> "RVC")."""
    try:
        return canonical_partitioner_name(name)
    except PartitioningError as error:
        raise argparse.ArgumentTypeError(str(error))


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (partition counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (a zero batch window flushes per tick)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _rule_ids(text: str) -> List[str]:
    """argparse type: comma-separated REP rule ids ("rep001,REP004")."""
    ids = [part.strip().upper() for part in text.split(",") if part.strip()]
    if not ids:
        raise argparse.ArgumentTypeError("expected at least one rule id")
    for rule_id in ids:
        if not (rule_id.startswith("REP") and rule_id[3:].isdigit()):
            raise argparse.ArgumentTypeError(
                f"rule ids look like REP001, got {rule_id!r}"
            )
    return ids


def _port_number(text: str) -> int:
    """argparse type: a TCP port (0 asks the OS for an ephemeral one)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(f"port must be in [0, 65535], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` CLI.

    The global ``--scale``/``--seed`` flags live on parent parsers attached
    to the root *and* to every sub-command, so they are accepted both
    before and after the sub-command name (the later position wins).  The
    sub-command copies carry suppressed defaults — argparse parses a
    sub-command into a fresh namespace and copies it over the root's, so a
    real default there would clobber a value given before the sub-command.
    """

    def _global_flags(with_defaults: bool) -> argparse.ArgumentParser:
        flags = argparse.ArgumentParser(add_help=False)
        flags.add_argument(
            "--scale",
            type=float,
            default=0.5 if with_defaults else argparse.SUPPRESS,
            help="dataset scale factor (default: 0.5)",
        )
        flags.add_argument(
            "--seed",
            type=int,
            default=0 if with_defaults else argparse.SUPPRESS,
            help="generator seed (default: 0)",
        )
        return flags

    root_flags = _global_flags(with_defaults=True)
    global_flags = _global_flags(with_defaults=False)

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Cut to Fit: Tailoring the Partitioning to the Computation'",
        parents=[root_flags],
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "characterize",
        help="print the Table 1 dataset characterisation",
        parents=[global_flags],
    )

    metrics_parser = subparsers.add_parser(
        "metrics", help="print Table 2/3 partitioning metrics", parents=[global_flags]
    )
    metrics_parser.add_argument("--partitions", type=_positive_int, default=128)
    metrics_parser.add_argument("--datasets", nargs="*", default=None)
    metrics_parser.add_argument(
        "--partitioners",
        nargs="+",
        type=_partitioner_name,
        default=None,
        help="strategy names, case-insensitive (default: the paper's six)",
    )

    run_parser = subparsers.add_parser(
        "run", help="run an algorithm sweep (Figures 3-6)", parents=[global_flags]
    )
    # type=str.upper runs before the choices check, so lowercase
    # abbreviations ("pr", "sssp") are accepted too.
    run_parser.add_argument(
        "--algorithm", default="PR", type=str.upper, choices=["PR", "CC", "TR", "SSSP"]
    )
    run_parser.add_argument("--partitions", type=_positive_int, default=128)
    run_parser.add_argument("--datasets", nargs="*", default=None)
    run_parser.add_argument(
        "--partitioners",
        nargs="+",
        type=_partitioner_name,
        default=None,
        help="strategy names, case-insensitive (default: the paper's six)",
    )
    # _positive_int (not bare int): --iterations 0 or negative would
    # otherwise silently produce empty or nonsense runs.
    run_parser.add_argument("--iterations", type=_positive_int, default=10)
    run_parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend (reference = cost-model simulator)",
    )
    run_parser.add_argument(
        "--engine-workers",
        type=_positive_int,
        default=None,
        help="shared-memory Pregel workers per run (default: serial); "
        "results are bit-identical at any worker count",
    )
    run_parser.add_argument(
        "--out-of-core",
        action="store_true",
        help="execute over memory-mapped shard artifacts instead of "
        "in-memory partitions (requires --cache-dir; PR/CC/SSSP on the "
        "reference backend; results are bit-identical)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store holding (or receiving) the shards used by "
        "--out-of-core; pre-populate it with 'repro ingest'",
    )
    run_parser.add_argument(
        "--chunk-edges",
        type=_positive_int,
        default=None,
        help="edges per superstep chunk in --out-of-core execution "
        "(default: the ooc module's chunk size)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a multi-algorithm x multi-granularity grid with one partition cache",
        parents=[global_flags],
    )
    sweep_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["PR"],
        type=str.upper,
        choices=["PR", "CC", "TR", "SSSP"],
        help="algorithms to execute per placement (default: PR)",
    )
    sweep_parser.add_argument(
        "--partitions",
        nargs="+",
        type=_positive_int,
        default=[128, 256],
        help="granularities to sweep (default: the paper's 128 and 256)",
    )
    sweep_parser.add_argument("--datasets", nargs="*", default=None)
    sweep_parser.add_argument(
        "--partitioners",
        nargs="+",
        type=_partitioner_name,
        default=None,
        help="strategy names, case-insensitive (default: the paper's six)",
    )
    sweep_parser.add_argument("--iterations", type=_positive_int, default=10)
    sweep_parser.add_argument(
        "--backends",
        nargs="+",
        default=["reference"],
        choices=available_backends(),
        help="execution backends to cover (default: reference)",
    )
    # _positive_int (not bare int): a zero/negative pool size would
    # otherwise reach ThreadPoolExecutor as a crash or a silent no-op.
    sweep_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker-pool size for cell execution (default: 1)",
    )
    sweep_parser.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="pool flavour behind --workers: 'thread' shares one in-memory "
        "session, 'process' runs cells on separate cores (default: thread)",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the planned cells and cache-hit estimate without executing",
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist placements, landmarks and completed cells to this "
        "directory and reuse them across invocations",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells whose records are already in --cache-dir "
        "(requires --cache-dir; reuse is on by default when a cache "
        "directory is given — this flag makes it explicit)",
    )
    sweep_parser.add_argument(
        "--engine-workers",
        type=_positive_int,
        default=None,
        help="shared-memory Pregel workers within each cell (default: "
        "serial); composes with --workers, which parallelises across cells",
    )

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="stream a graph into content-addressed shard artifacts",
        parents=[global_flags],
    )
    ingest_parser.add_argument(
        "edge_list",
        nargs="?",
        default=None,
        help="path to a SNAP-style edge-list file to ingest (omit to "
        "ingest a catalog dataset via --dataset, or --synthetic)",
    )
    ingest_parser.add_argument(
        "--dataset",
        default=None,
        help="catalog dataset to ingest, or the dataset label for an "
        "edge-list / synthetic source (default: file name / 'synthetic')",
    )
    ingest_parser.add_argument(
        "--synthetic",
        action="store_true",
        help="generate the edge stream instead of reading it "
        "(power-law endpoints; requires --vertices and --edges)",
    )
    ingest_parser.add_argument(
        "--vertices",
        type=_positive_int,
        default=None,
        help="vertex-id space size for --synthetic",
    )
    ingest_parser.add_argument(
        "--edges",
        type=_positive_int,
        default=None,
        help="edge count for --synthetic",
    )
    ingest_parser.add_argument(
        "--skew",
        type=float,
        default=2.0,
        help="power-law skew for --synthetic; 1.0 is uniform (default: 2.0)",
    )
    ingest_parser.add_argument(
        "--delimiter",
        default=None,
        help="field delimiter for edge-list files (default: any whitespace)",
    )
    ingest_parser.add_argument(
        "--partitioner",
        type=_partitioner_name,
        default="Greedy",
        help="streaming partitioning strategy (default: Greedy)",
    )
    ingest_parser.add_argument("--partitions", type=_positive_int, default=128)
    ingest_parser.add_argument(
        "--chunk-edges",
        type=_positive_int,
        default=None,
        help="edges per ingest chunk — the peak-memory knob "
        "(default: the ooc module's chunk size)",
    )
    ingest_parser.add_argument(
        "--cache-dir",
        required=True,
        help="artifact store directory receiving the shard",
    )
    ingest_parser.add_argument(
        "--force",
        action="store_true",
        help="rebuild the shard even when the store already has it",
    )

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or clear a persistent artifact store",
        parents=[global_flags],
    )
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.add_argument(
        "--cache-dir", required=True, help="artifact store directory"
    )
    cache_parser.add_argument(
        "--kind",
        choices=["placements", "landmarks", "records", "shards", "checks"],
        default=None,
        help="restrict 'clear' to one artifact kind (default: all)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="start the long-lived graph query daemon",
        parents=[global_flags],
    )
    serve_parser.add_argument(
        "--datasets",
        nargs="+",
        default=["youtube"],
        help="catalog datasets to preload and serve (default: youtube)",
    )
    serve_parser.add_argument(
        "--partitioner",
        type=_partitioner_name,
        default="Hybrid",
        help="partitioning strategy for the served graphs (default: Hybrid)",
    )
    serve_parser.add_argument("--partitions", type=_positive_int, default=16)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=_port_number,
        default=8571,
        help="TCP port to bind; 0 picks an ephemeral port (default: 8571)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store for warm restarts: placements and landmark "
        "choices are reused across daemon starts",
    )
    serve_parser.add_argument(
        "--landmarks",
        type=_positive_int,
        default=5,
        help="landmark count for the distance-estimate index (default: 5)",
    )
    serve_parser.add_argument(
        "--iterations",
        type=_positive_int,
        default=10,
        help="PageRank iterations behind /pagerank/top (default: 10)",
    )
    serve_parser.add_argument(
        "--top-k",
        type=_positive_int,
        default=10,
        help="default k for /pagerank/top (default: 10)",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=_nonnegative_int,
        default=25,
        help="tick window within which concurrent exact-distance requests "
        "coalesce into one multi-source sweep (default: 25)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=_positive_int,
        default=256,
        help="flush a batch early once this many distinct sources are "
        "pending (default: 256)",
    )
    serve_parser.add_argument(
        "--engine-workers",
        type=_positive_int,
        default=None,
        help="shared-memory Pregel workers for exact-SSSP batch sweeps and "
        "lazy PageRank/component runs (default: serial)",
    )

    check_parser = subparsers.add_parser(
        "check",
        help="run the project-native static analyser (REP rules)",
        parents=[global_flags],
    )
    check_parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to check (default: src tests benchmarks "
        "examples under the current directory)",
    )
    check_parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings output format (default: text)",
    )
    check_parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of grandfathered findings; only findings not "
        "in the baseline fail the check",
    )
    check_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    check_parser.add_argument(
        "--rule",
        action="append",
        type=_rule_ids,
        default=None,
        help="restrict to specific rule ids; comma-separated and "
        "repeatable (e.g. --rule REP001,REP004)",
    )
    check_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the id/severity/description table of every rule and exit",
    )
    check_parser.add_argument(
        "--output",
        default=None,
        help="also write the JSON findings document to this file "
        "(CI artifact), independent of --format",
    )
    check_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="fan per-file analysis across N worker processes "
        "(default: 1, serial)",
    )
    check_parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store for per-file results keyed by file content and "
        "rule-set fingerprint; warm runs re-analyze only changed files",
    )
    check_parser.add_argument(
        "--statistics",
        action="store_true",
        help="report per-rule finding/file counts and parse/analysis wall "
        "time (text and JSON output)",
    )

    advise_parser = subparsers.add_parser(
        "advise", help="recommend a partitioner", parents=[global_flags]
    )
    advise_parser.add_argument("--dataset", required=True)
    advise_parser.add_argument("--algorithm", default="PR", type=str.upper)
    advise_parser.add_argument("--partitions", type=_positive_int, default=None)
    advise_parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="also execute the recommended configuration on this backend",
    )

    return parser


def _cmd_characterize(args: argparse.Namespace) -> int:
    rows = build_table1(scale=args.scale, seed=args.seed)
    print(format_table1(rows))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    table = run_partitioning_study(
        num_partitions=args.partitions,
        datasets=args.datasets or PAPER_DATASET_NAMES,
        partitioners=args.partitioners,
        scale=args.scale,
        seed=args.seed,
    )
    print(format_metrics_table(table))
    return 0


def _cmd_run_out_of_core(args: argparse.Namespace) -> int:
    """``repro run --out-of-core``: execute over memory-mapped shards.

    Placements, vertex values and ``SuperstepRecord`` counters are
    bit-identical to the in-memory path; only the residency story changes
    (each partition's edges are a read-only mmap view, touched one chunk
    at a time and dropped after its superstep pass).
    """
    # Import here: the out-of-core stack is irrelevant to in-memory runs.
    from .algorithms.registry import canonical_algorithm_name
    from .ooc import DEFAULT_CHUNK_EDGES

    if not args.cache_dir:
        raise AnalysisError(
            "--out-of-core requires --cache-dir (shards are on-disk artifacts; "
            "pre-populate the store with 'repro ingest')"
        )
    algorithm = canonical_algorithm_name(args.algorithm)
    if algorithm == "TR":
        raise AnalysisError(
            "triangle counting materialises whole adjacency sets and is not "
            "available out-of-core; choose PR, CC or SSSP"
        )
    if args.backend != "reference":
        raise AnalysisError(
            "--out-of-core runs on the reference backend only "
            f"(got {args.backend!r})"
        )
    if args.engine_workers is not None:
        raise AnalysisError(
            "--engine-workers forks in-memory partitions and does not compose "
            "with --out-of-core (supersteps already stream one chunk at a time)"
        )
    datasets = list(args.datasets or PAPER_DATASET_NAMES)
    for name in datasets:
        get_spec(name)
    partitioners = args.partitioners or PAPER_PARTITIONER_NAMES
    chunk_edges = args.chunk_edges or DEFAULT_CHUNK_EDGES
    session = Session(scale=args.scale, seed=args.seed, store=args.cache_dir)
    rows = []
    for dataset in datasets:
        for partitioner in partitioners:
            sharded = session.sharded_partition(
                dataset, partitioner, args.partitions, chunk_edges=chunk_edges
            )
            result = run_algorithm(
                algorithm, sharded, num_iterations=args.iterations
            )
            simulated = (
                result.simulated_seconds if result.report is not None else ""
            )
            rows.append(
                {
                    "dataset": dataset,
                    "partitioner": partitioner,
                    "algorithm": algorithm,
                    "partitions": args.partitions,
                    "supersteps": result.num_supersteps,
                    "simulated_s": simulated,
                    "wall_s": result.wall_seconds,
                }
            )
            sharded.release()
    print(format_table(rows))
    print()
    stats = session.stats
    print(
        f"Shard store: {stats.disk_shard_hits} disk hits, "
        f"{stats.disk_shard_misses} misses, {stats.shard_builds} shard builds."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.out_of_core:
        return _cmd_run_out_of_core(args)
    if args.cache_dir or args.chunk_edges:
        raise AnalysisError(
            "--cache-dir/--chunk-edges only apply to 'run' together with "
            "--out-of-core (use 'sweep' for cached in-memory grids)"
        )
    config_kwargs = {}
    if args.partitioners:
        config_kwargs["partitioners"] = args.partitioners
    config = ExperimentConfig(
        algorithm=args.algorithm,
        num_partitions=args.partitions,
        datasets=args.datasets or PAPER_DATASET_NAMES,
        scale=args.scale,
        seed=args.seed,
        num_iterations=args.iterations,
        backend=args.backend,
        engine_workers=args.engine_workers,
        **config_kwargs,
    )
    records = run_algorithm_study(config)
    print(format_table(records_to_rows(records)))
    print()
    if args.backend != "reference":
        # No cluster cost model: report measured wall-clock time instead of
        # simulated-time correlations.  Partition-oblivious backends execute
        # once per dataset (each partitioner row reuses that run), so count
        # and sum distinct executions only.
        if get_backend(args.backend).uses_partitioning:
            executions = [record.wall_seconds for record in records]
        else:
            per_dataset = {record.dataset: record.wall_seconds for record in records}
            executions = list(per_dataset.values())
        print(
            f"Backend {args.backend!r}: {len(executions)} executions in "
            f"{sum(executions):.3f}s wall-clock (no simulated cluster timing)."
        )
        return 0
    correlations = correlation_table(records)
    print("Correlation of metrics with simulated time:")
    for metric, value in correlations.items():
        print(f"  {metric:>12}: {value:+.2f}")
    best = best_partitioner_per_dataset(records)
    print("Best partitioner per dataset:")
    for dataset, partitioner in best.items():
        print(f"  {dataset:>16}: {partitioner}")
    return 0


#: SSSP landmarks per dataset in ``repro sweep`` — the paper's count, and
#: the same default ``run`` uses via ``ExperimentConfig.landmark_count``,
#: so the two front-ends report identical numbers for identical cells.
SWEEP_LANDMARK_COUNT = 5


def _build_sweep_plan(args: argparse.Namespace):
    """The (session, plan) pair behind ``repro sweep``."""
    if args.resume and not args.cache_dir:
        raise AnalysisError("--resume requires --cache-dir (there is no store to resume from)")
    datasets = list(args.datasets or PAPER_DATASET_NAMES)
    # Resolve names against the catalog up front so a typo fails loudly
    # even under --dry-run (which otherwise never touches the catalog).
    for name in datasets:
        get_spec(name)
    session = Session(scale=args.scale, seed=args.seed, store=args.cache_dir)
    plan = (
        session.plan()
        .datasets(datasets)
        .granularities(args.partitions)
        .algorithms(args.algorithms)
        .backends(args.backends)
        .iterations(args.iterations)
        .landmarks(SWEEP_LANDMARK_COUNT, seed=args.seed + 7)
        .engine_workers(args.engine_workers)
    )
    if args.partitioners:
        plan.partitioners(args.partitioners)
    return session, plan


def _cmd_sweep(args: argparse.Namespace) -> int:
    session, plan = _build_sweep_plan(args)
    preview = plan.preview()
    if args.dry_run:
        print(format_table([cell.as_row() for cell in preview.cells]))
        print()
        print(
            f"Planned {preview.num_cells} cells; {preview.unique_partitions} unique "
            f"(dataset, partitioner, partitions) triples -> "
            f"{preview.partition_builds} partition builds, "
            f"{preview.expected_cache_hits} partition-cache hits."
        )
        return 0
    results = plan.run(
        workers=args.workers,
        executor=args.executor,
        resume=True if args.resume else None,
    )
    print(format_table(results.to_rows()))
    print()
    stats = session.stats
    print(
        f"Partition cache: {stats.partition_builds} builds, "
        f"{stats.partition_hits} hits ({preview.num_cells} cells, "
        f"workers={args.workers}, executor={args.executor})."
    )
    if args.cache_dir:
        print(
            f"Artifact store: {stats.disk_hits} disk hits "
            f"({stats.disk_record_hits} records, {stats.disk_partition_hits} placements, "
            f"{stats.disk_landmark_hits} landmarks), {stats.disk_misses} disk misses; "
            f"{stats.disk_record_hits} of {preview.num_cells} cells resumed from "
            f"{args.cache_dir}."
        )
    # Only the reference simulator produces comparable simulated times.
    for algorithm, group in results.filter(backend="reference").group_by("algorithm").items():
        for partitions, slice_ in group.group_by("num_partitions").items():
            best = {
                dataset: subset.best().partitioner
                for dataset, subset in slice_.group_by("dataset").items()
            }
            print(f"Best partitioner per dataset [{algorithm} @ {partitions}]: {best}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    # Import here: the out-of-core stack is irrelevant to every other
    # sub-command (same pattern as the serve daemon).
    from .ooc import (
        DEFAULT_CHUNK_EDGES,
        EdgeListChunkSource,
        GraphChunkSource,
        SyntheticChunkSource,
    )
    from .ooc.ingest import ingest_source

    chunk_edges = args.chunk_edges or DEFAULT_CHUNK_EDGES
    if args.edge_list is not None and args.synthetic:
        raise AnalysisError("an edge-list path and --synthetic are mutually exclusive")
    if args.edge_list is not None:
        source = EdgeListChunkSource(
            args.edge_list,
            delimiter=args.delimiter,
            name=args.dataset or "",
            chunk_edges=chunk_edges,
        )
    elif args.synthetic:
        if args.vertices is None or args.edges is None:
            raise AnalysisError("--synthetic requires --vertices and --edges")
        source = SyntheticChunkSource(
            args.vertices,
            args.edges,
            seed=args.seed,
            skew=args.skew,
            name=args.dataset or "synthetic",
            chunk_edges=chunk_edges,
        )
    elif args.dataset:
        # Catalog datasets go through GraphChunkSource so the shard key —
        # (name, partitioner, partitions, scale, seed) — matches what
        # Session.sharded_partition computes, making this a warm-up for
        # 'repro run --out-of-core' against the same --cache-dir.
        get_spec(args.dataset)
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        source = GraphChunkSource(graph, chunk_edges=chunk_edges)
    else:
        raise AnalysisError(
            "nothing to ingest: give an edge-list path, --dataset NAME, "
            "or --synthetic --vertices N --edges M"
        )
    store = ArtifactStore(args.cache_dir)
    sharded, report = ingest_source(
        store,
        source,
        args.partitioner,
        args.partitions,
        scale=args.scale,
        seed=args.seed,
        chunk_edges=chunk_edges,
        force=args.force,
    )
    sharded.release()
    verb = "reused" if report.reused else "built"
    print(
        f"Ingested {report.dataset!r} with {report.partitioner} at "
        f"{report.num_partitions} partitions: {report.num_edges:,} edges, "
        f"{report.num_vertices:,} vertices, replication factor "
        f"{report.replication_factor:.2f} ({verb} shard in "
        f"{report.elapsed_seconds:.2f}s)."
    )
    disk = store.stats("shards")
    print(
        f"Shard store at {store.root}: {disk.hits} disk hits, "
        f"{disk.misses} misses."
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.cache_dir)
    if args.action == "info":
        info = store.info()
        print(f"Artifact store at {info.root}:")
        print(f"  placements: {info.placements}")
        print(f"  landmarks:  {info.landmarks}")
        print(f"  records:    {info.records}")
        print(f"  shards:     {info.shards}")
        print(f"  checks:     {info.checks}")
        print(f"  total:      {info.total_artifacts} artifacts, {info.total_bytes:,} bytes")
        return 0
    removed = store.clear(kind=args.kind)
    scope = args.kind or "all kinds"
    print(f"Removed {removed} artifacts ({scope}) from {store.root}.")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Import here: the daemon stack (asyncio server, batcher threads) is
    # irrelevant to every other sub-command.
    from .serve import GraphService, serve_forever

    for name in args.datasets:
        get_spec(name)
    session = Session(scale=args.scale, seed=args.seed, store=args.cache_dir)
    service = GraphService(
        session,
        datasets=args.datasets,
        partitioner=args.partitioner,
        num_partitions=args.partitions,
        landmark_count=args.landmarks,
        pagerank_iterations=args.iterations,
        engine_workers=args.engine_workers,
    )
    print(
        f"preloading {len(args.datasets)} dataset(s) with {args.partitioner} "
        f"at {args.partitions} partitions (scale={args.scale}, seed={args.seed})...",
        flush=True,
    )
    for row in service.preload():
        print(
            f"  {row['dataset']}: {row['vertices']:,} vertices, "
            f"{row['edges']:,} edges, {row['landmarks']} landmarks "
            f"({row['seconds']}s)",
            flush=True,
        )
    if args.cache_dir:
        stats = session.stats
        print(
            f"  artifact store {args.cache_dir}: {stats.disk_hits} disk hits, "
            f"{stats.disk_misses} misses",
            flush=True,
        )
    serve_forever(
        service,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        top_k_default=args.top_k,
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Import here: the static analyser is irrelevant to every other
    # sub-command (same pattern as the serve daemon).
    from .devtools import run_check

    # --rule is repeatable *and* comma-separated: flatten the lists.
    if args.rule is not None:
        args.rule = [rule_id for chunk in args.rule for rule_id in chunk]
    return run_check(args)


def _cmd_advise(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.partitions:
        recommendation = recommend_empirically(graph, args.algorithm, args.partitions)
    else:
        recommendation = recommend_partitioner(graph, args.algorithm)
    print(str(recommendation))
    if recommendation.candidates:
        for name, score in sorted(recommendation.candidates.items(), key=lambda kv: kv[1]):
            print(f"  {name:>8}: {score:,.0f}")
    if args.backend:
        num_partitions = args.partitions or DEFAULT_ADVISE_PARTITIONS
        default_note = "" if args.partitions else " (default)"
        pgraph = PartitionedGraph.partition(
            graph, recommendation.partitioner, num_partitions
        )
        result = run_algorithm(recommendation.algorithm, pgraph, backend=args.backend)
        timing = (
            f"simulated {result.simulated_seconds:.4f}s"
            if result.report is not None
            else "no simulated timing"
        )
        print(
            f"Executed {result.algorithm} with {recommendation.partitioner} at "
            f"{num_partitions} partitions{default_note} on backend "
            f"{result.backend!r}: {result.wall_seconds:.3f}s wall-clock, {timing}."
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (bad dataset name, misconfigured study, ...) all derive
    from :class:`ReproError`; they are user errors, not crashes, so they
    are reported as one line on stderr with exit code 2.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "characterize": _cmd_characterize,
        "metrics": _cmd_metrics,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "advise": _cmd_advise,
        "ingest": _cmd_ingest,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "check": _cmd_check,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
