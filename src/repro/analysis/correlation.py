"""Correlation between partitioning metrics and simulated execution time.

Figures 3-6 of the paper report, per algorithm and granularity, the Pearson
correlation between execution time and one partitioning metric over all
(dataset, partitioner) runs.  This module reproduces that computation and
also provides Spearman rank correlation as a robustness check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import AnalysisError
from .results import RunRecord

__all__ = ["pearson", "spearman", "correlation_with_time", "correlation_table"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape:
        raise AnalysisError("pearson requires sequences of equal length")
    if x.size < 2:
        raise AnalysisError("pearson requires at least two observations")
    x_std = x.std()
    y_std = y.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))


def _ranks(values: Sequence[float]) -> np.ndarray:
    """1-based average ranks with ties sharing their group's mean rank.

    Fully vectorised: one sort plus one ``np.unique`` inverse mapping.
    Each tie group's ranks are consecutive integers, so their sum (and
    hence the bincount-based mean) is exact in float64 — value-identical
    to averaging each group with a per-value mask.  NaNs are never a tie
    group (``NaN != NaN``): they keep their individual sort ranks, as a
    mask-based ``array == value`` loop would leave them.
    """
    array = np.asarray(values, dtype=np.float64)
    order = np.argsort(array, kind="mergesort")
    ranks = np.empty(array.size, dtype=np.float64)
    ranks[order] = np.arange(1, array.size + 1, dtype=np.float64)
    _, inverse, counts = np.unique(array, return_inverse=True, return_counts=True)
    rank_sums = np.bincount(inverse, weights=ranks)
    averaged = rank_sums[inverse] / counts[inverse]
    nan_mask = np.isnan(array)
    if nan_mask.any():  # np.unique collapses NaNs into one group; undo that
        averaged[nan_mask] = ranks[nan_mask]
    return averaged


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation coefficient."""
    if len(xs) != len(ys):
        raise AnalysisError("spearman requires sequences of equal length")
    if len(xs) < 2:
        raise AnalysisError("spearman requires at least two observations")
    return pearson(_ranks(xs), _ranks(ys))


def correlation_with_time(
    records: Iterable[RunRecord],
    metric: str,
    method: str = "pearson",
) -> float:
    """Correlation between a partitioning metric and simulated time over runs."""
    records = list(records)
    if len(records) < 2:
        raise AnalysisError("need at least two runs to correlate")
    xs = [record.metric(metric) for record in records]
    ys = [record.simulated_seconds for record in records]
    if method == "pearson":
        return pearson(xs, ys)
    if method == "spearman":
        return spearman(xs, ys)
    raise AnalysisError(f"unknown correlation method {method!r}")


def correlation_table(
    records: Iterable[RunRecord],
    metrics: Sequence[str] = ("comm_cost", "cut", "non_cut", "balance", "part_stdev"),
    method: str = "pearson",
) -> Dict[str, float]:
    """Correlation of every requested metric with simulated time."""
    records = list(records)
    return {metric: correlation_with_time(records, metric, method=method) for metric in metrics}
