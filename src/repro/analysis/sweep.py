"""Granularity sweeps: how the partition count shapes metrics and runtime.

One of the paper's findings is that "partitioning depends on the number of
partitions": the optimal strategy changes between 128 and 256 partitions
and the best granularity depends on the algorithm.  This module sweeps the
partition-count axis for a dataset and returns the per-strategy curves of
every partitioning metric and (optionally) the simulated runtime of an
algorithm, so the crossover points can be located.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.graph import Graph
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..errors import AnalysisError
from ..metrics.partition_metrics import PartitioningMetrics
from ..partitioning.registry import PAPER_PARTITIONER_NAMES
from ..session import Session

__all__ = ["GranularityPoint", "GranularitySweep", "sweep_granularity"]


@dataclass(frozen=True)
class GranularityPoint:
    """Metrics (and optional runtime) of one (strategy, num_partitions) pair."""

    partitioner: str
    num_partitions: int
    metrics: PartitioningMetrics
    simulated_seconds: Optional[float] = None


@dataclass
class GranularitySweep:
    """All points of a sweep over the partition-count axis for one dataset."""

    dataset: str
    algorithm: Optional[str]
    points: List[GranularityPoint] = field(default_factory=list)

    def curve(self, partitioner: str, value: str = "comm_cost") -> List[tuple]:
        """Return ``[(num_partitions, value), ...]`` for one strategy.

        ``value`` is a metric name or ``"seconds"`` for the simulated time.
        """
        result = []
        for point in self.points:
            if point.partitioner != partitioner:
                continue
            if value == "seconds":
                result.append((point.num_partitions, point.simulated_seconds))
            else:
                result.append((point.num_partitions, point.metrics.value(value)))
        return sorted(result)

    def best_partitioner(self, num_partitions: int, by: str = "seconds") -> str:
        """Strategy with the lowest ``by`` value at one granularity."""
        candidates = [p for p in self.points if p.num_partitions == num_partitions]
        if not candidates:
            raise AnalysisError(f"no sweep points at {num_partitions} partitions")

        def key(point: GranularityPoint) -> float:
            if by == "seconds":
                if point.simulated_seconds is None:
                    raise AnalysisError("sweep was run without an algorithm; no runtimes recorded")
                return point.simulated_seconds
            return point.metrics.value(by)

        return min(candidates, key=key).partitioner

    def crossover_points(self, by: str = "seconds") -> Dict[int, str]:
        """Best strategy at every swept granularity (shows where the winner changes)."""
        granularities = sorted({p.num_partitions for p in self.points})
        return {n: self.best_partitioner(n, by=by) for n in granularities}


def sweep_granularity(
    graph: Graph,
    partition_counts: Sequence[int],
    partitioners: Optional[Sequence[str]] = None,
    algorithm: Optional[str] = None,
    num_iterations: int = 5,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    session: Optional[Session] = None,
) -> GranularitySweep:
    """Sweep the number of partitions for one dataset.

    When ``algorithm`` is given (``"PR"``, ``"CC"``, ``"TR"`` or ``"SSSP"``)
    every point also records the simulated runtime of that algorithm;
    otherwise only the partitioning metrics are collected (much cheaper).

    A thin wrapper over the :mod:`repro.session` planner: pass a shared
    ``session`` and the sweep reuses placements other studies already
    built (and vice versa).
    """
    if not partition_counts:
        raise AnalysisError("partition_counts must not be empty")
    if any(n < 1 for n in partition_counts):
        raise AnalysisError("partition counts must be >= 1")
    dataset = graph.name or "graph"
    if session is None:
        session = Session()
    session.adopt_graph(dataset, graph)

    plan = (
        session.plan()
        .datasets(dataset)
        .partitioners(partitioners or PAPER_PARTITIONER_NAMES)
        .granularities(partition_counts)
        .cluster(cluster)
        .cost_parameters(cost_parameters)
    )
    if algorithm is not None:
        # No explicit landmark choice: SSSP keeps run_algorithm's default
        # single landmark, as the pre-planner sweep did.
        plan.algorithms(algorithm).iterations(num_iterations)

    sweep = GranularitySweep(dataset=dataset, algorithm=algorithm)
    for record in plan.run():
        sweep.points.append(
            GranularityPoint(
                partitioner=record.partitioner,
                num_partitions=record.num_partitions,
                metrics=record.metrics,
                simulated_seconds=None if algorithm is None else record.simulated_seconds,
            )
        )
    return sweep
