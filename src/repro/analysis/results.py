"""Result records for experiment runs and small helpers to summarise them."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..metrics.partition_metrics import PartitioningMetrics

__all__ = ["RunRecord", "records_to_rows", "best_partitioner_per_dataset", "group_by_dataset"]


@dataclass(frozen=True)
class RunRecord:
    """One (dataset, partitioner, granularity, algorithm) execution."""

    dataset: str
    partitioner: str
    num_partitions: int
    algorithm: str
    metrics: PartitioningMetrics
    simulated_seconds: float
    num_supersteps: int
    backend: str = "reference"
    wall_seconds: float = 0.0

    def metric(self, name: str) -> float:
        """Value of a partitioning metric for this run (e.g. ``"comm_cost"``)."""
        return self.metrics.value(name)

    def as_row(self) -> Dict[str, object]:
        """Flatten the record for tabulation."""
        return {
            "dataset": self.dataset,
            "partitioner": self.partitioner,
            "partitions": self.num_partitions,
            "algorithm": self.algorithm,
            "comm_cost": self.metrics.comm_cost,
            "cut": self.metrics.cut,
            "balance": round(self.metrics.balance, 2),
            "seconds": round(self.simulated_seconds, 4),
            "wall_s": round(self.wall_seconds, 4),
            "supersteps": self.num_supersteps,
            "backend": self.backend,
        }


def records_to_rows(records: Iterable[RunRecord]) -> List[Dict[str, object]]:
    """Convert run records into plain dict rows."""
    return [record.as_row() for record in records]


def group_by_dataset(records: Iterable[RunRecord]) -> Dict[str, List[RunRecord]]:
    """Group run records by dataset name, preserving insertion order."""
    grouped: Dict[str, List[RunRecord]] = defaultdict(list)
    for record in records:
        grouped[record.dataset].append(record)
    return dict(grouped)


def best_partitioner_per_dataset(
    records: Iterable[RunRecord],
    num_partitions: Optional[int] = None,
) -> Dict[str, str]:
    """Partitioner with the lowest simulated time for every dataset.

    When ``num_partitions`` is given only runs at that granularity are
    considered (this is how the per-configuration "best strategy" lists in
    Section 4 of the paper are produced).
    """
    best: Dict[str, RunRecord] = {}
    for record in records:
        if num_partitions is not None and record.num_partitions != num_partitions:
            continue
        current = best.get(record.dataset)
        if current is None or record.simulated_seconds < current.simulated_seconds:
            best[record.dataset] = record
    return {dataset: record.partitioner for dataset, record in best.items()}
