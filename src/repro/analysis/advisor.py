"""The "cut to fit" advisor: turn the paper's conclusions into a usable API.

Section 4 of the paper distils its measurements into heuristics:

* algorithms whose complexity tracks the number of edges (PageRank,
  Connected Components, SSSP) should pick the partitioner that minimises
  **Communication Cost** — in practice 2D for large dense graphs and
  DC (or 1D) for smaller or id-local graphs;
* algorithms that keep a lot of per-vertex state and per-vertex compute
  (Triangle Count) should compare partitioners on the **Cut** metric, and
  the differences between strategies are small;
* granularity matters: communication-bound algorithms prefer coarser
  partitioning, while algorithms whose active set shrinks (CC) or that are
  compute-bound (TR) benefit from finer partitioning.

Two modes are offered: a purely heuristic recommendation from the graph's
summary statistics, and an empirical recommendation that actually measures
the candidate partitioners on the graph and picks the one minimising the
metric the paper identifies for the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..algorithms.registry import (
    algorithm_metric_of_interest,
    canonical_algorithm_name,
)
from ..core.graph import Graph
from ..core.properties import GraphSummary, summarize
from ..errors import AnalysisError, EngineError
from ..partitioning.registry import (
    PAPER_PARTITIONER_NAMES,
    canonical_partitioner_name,
)
from ..session import Session

__all__ = [
    "DEFAULT_LARGE_EDGE_THRESHOLD",
    "Recommendation",
    "recommend_partitioner",
    "recommend_empirically",
]

#: Edge count above which a dataset counts as "large" at the analogue scale
#: (the paper's threshold is "Orkut-sized and above"; the analogues are
#: roughly 1000x smaller).
DEFAULT_LARGE_EDGE_THRESHOLD = 15_000


@dataclass(frozen=True)
class Recommendation:
    """A partitioner recommendation plus the reasoning behind it."""

    algorithm: str
    partitioner: str
    metric: str
    granularity: str
    rationale: str
    candidates: Optional[Dict[str, float]] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.algorithm}] use {self.partitioner} "
            f"(optimises {self.metric}; {self.granularity} granularity): {self.rationale}"
        )


def _normalise_algorithm(algorithm: str) -> str:
    try:
        return canonical_algorithm_name(algorithm)
    except EngineError as error:
        # The advisor is part of the analysis layer; keep its error type.
        raise AnalysisError(str(error)) from error


def _summary_of(graph_or_summary: Union[Graph, GraphSummary]) -> GraphSummary:
    if isinstance(graph_or_summary, GraphSummary):
        return graph_or_summary
    if isinstance(graph_or_summary, Graph):
        return summarize(graph_or_summary)
    raise AnalysisError("expected a Graph or GraphSummary")


def recommend_partitioner(
    graph_or_summary: Union[Graph, GraphSummary],
    algorithm: str,
    large_edge_threshold: int = DEFAULT_LARGE_EDGE_THRESHOLD,
) -> Recommendation:
    """Heuristic recommendation from the paper's conclusions (no measurement)."""
    summary = _summary_of(graph_or_summary)
    key = _normalise_algorithm(algorithm)
    metric = algorithm_metric_of_interest(key)
    is_large = summary.num_edges >= large_edge_threshold
    mean_degree = summary.num_edges / summary.num_vertices if summary.num_vertices else 0.0
    is_road_like = (
        summary.symmetry_percent >= 99.0
        and mean_degree <= 6.0
        and summary.triangles < 0.2 * max(1, summary.num_vertices)
    )

    if key == "TR":
        partitioner = "CRVC"
        granularity = "fine"
        rationale = (
            "Triangle Count is dominated by per-vertex state and compute; partitioner "
            "differences are within 5-10%, so pick a balanced strategy (CRVC) and use "
            "fine-grained partitioning for better load balance."
        )
    elif is_large:
        partitioner = "2D"
        granularity = "coarse" if key == "PR" else "fine"
        rationale = (
            "Large, dense graph: EdgePartition2D bounds vertex replication by 2*sqrt(N) "
            "and minimises Communication Cost, the best runtime predictor for "
            "communication-bound algorithms."
        )
    elif is_road_like:
        partitioner = "DC"
        granularity = "coarse" if key == "PR" else "fine"
        rationale = (
            "Small graph with id locality (road-network-like): the modulo-based "
            "DestinationCut keeps neighbouring vertices together and minimises "
            "Communication Cost without the replication of the hash strategies."
        )
    else:
        partitioner = "DC" if key == "PR" else ("1D" if key in ("CC", "SSSP") else "2D")
        granularity = "coarse" if key == "PR" else "fine"
        rationale = (
            "Small or medium graph: the source/destination cut strategies minimise "
            "Communication Cost; for label-propagation style algorithms 1D's "
            "out-edge collocation performs equally well."
        )

    return Recommendation(
        algorithm=key,
        partitioner=partitioner,
        metric=metric,
        granularity=granularity,
        rationale=rationale,
    )


def recommend_empirically(
    graph: Graph,
    algorithm: str,
    num_partitions: int,
    candidates: Optional[Sequence[str]] = None,
    session: Optional[Session] = None,
) -> Recommendation:
    """Measure candidate partitioners and pick the one minimising the paper's metric.

    This is the "tailor the partitioning to the computation" workflow the
    paper advocates: compute the cheap partitioning metrics for every
    candidate strategy, then choose by the metric that predicts runtime for
    the algorithm at hand (CommCost for PR/CC/SSSP, Cut for TR).

    The candidates run as a metrics-only plan over a :class:`Session`;
    pass a shared ``session`` and the advisor reuses placements other
    studies already built (and leaves its own behind for them).
    """
    key = _normalise_algorithm(algorithm)
    metric = algorithm_metric_of_interest(key)
    names = (
        list(PAPER_PARTITIONER_NAMES)
        if candidates is None
        else [canonical_partitioner_name(name) for name in candidates]
    )
    if not names:
        raise AnalysisError("at least one candidate partitioner is required")

    dataset = graph.name or "graph"
    if session is None:
        session = Session()
    session.adopt_graph(dataset, graph)
    plan = (
        session.plan()
        .datasets(dataset)
        .partitioners(names)
        .granularities(num_partitions)
    )
    scores: Dict[str, float] = {}
    for record in plan.run():
        scores[record.partitioner] = record.metrics.value(metric)

    best = min(scores, key=lambda name: (scores[name], names.index(name)))
    granularity = "fine" if key in ("CC", "TR") else "coarse"
    rationale = (
        f"Measured {metric} for {len(names)} candidate strategies at "
        f"{num_partitions} partitions; {best} minimises it "
        f"({scores[best]:,.0f})."
    )
    return Recommendation(
        algorithm=key,
        partitioner=best,
        metric=metric,
        granularity=granularity,
        rationale=rationale,
        candidates=dict(scores),
    )
