"""Text rendering of the paper's figures (no plotting dependencies).

The original figures are scatter plots (execution time vs a partitioning
metric) and log-log degree distributions.  This module renders the same
data as fixed-width ASCII so the figures can be regenerated in a terminal,
a CI log, or the benchmark output without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .results import RunRecord

__all__ = ["ascii_scatter", "scatter_from_records", "loglog_histogram"]

_POINT_MARKS = "ox+*#@%&abcdefghijklmnopqrstuvwxyz"


def ascii_scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 20,
    labels: Optional[Sequence[str]] = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render ``(x, y)`` points as an ASCII scatter plot.

    ``labels`` optionally assigns each point to a series; each series gets
    its own mark character and a legend line.  ``log_x`` plots the x axis
    on a log10 scale (useful for CommCost, which spans orders of magnitude
    across datasets).
    """
    if not points:
        raise AnalysisError("ascii_scatter needs at least one point")
    if width < 10 or height < 5:
        raise AnalysisError("plot area too small (need width >= 10, height >= 5)")
    if labels is not None and len(labels) != len(points):
        raise AnalysisError("labels must have one entry per point")

    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    if log_x:
        if min(xs) <= 0:
            raise AnalysisError("log_x requires strictly positive x values")
        xs = [math.log10(x) for x in xs]

    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    series: List[str] = []
    marks: Dict[str, str] = {}
    if labels is None:
        labels = ["data"] * len(points)
    for label in labels:
        if label not in marks:
            marks[label] = _POINT_MARKS[len(marks) % len(_POINT_MARKS)]
            series.append(label)

    grid = [[" "] * width for _ in range(height)]
    for (x, y), label in zip(zip(xs, ys), labels):
        column = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][column] = marks[label]

    top = f"{y_max:.4g}"
    bottom = f"{y_min:.4g}"
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines = [f"{y_label}"]
    for index, row_cells in enumerate(grid):
        prefix = top if index == 0 else (bottom if index == height - 1 else "")
        lines.append(f"{prefix:>{margin}} |" + "".join(row_cells))
    x_left = f"{(10 ** x_min if log_x else x_min):.4g}"
    x_right = f"{(10 ** x_max if log_x else x_max):.4g}"
    axis = " " * margin + " +" + "-" * width
    scale_note = " (log scale)" if log_x else ""
    footer = (
        " " * margin
        + "  "
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
    )
    lines.append(axis)
    lines.append(footer)
    lines.append(" " * margin + f"  {x_label}{scale_note}")
    if len(series) > 1:
        legend = ", ".join(f"{marks[name]}={name}" for name in series)
        lines.append(" " * margin + f"  legend: {legend}")
    return "\n".join(lines)


def scatter_from_records(
    records: Iterable[RunRecord],
    metric: str = "comm_cost",
    width: int = 64,
    height: int = 20,
    log_x: bool = True,
) -> str:
    """Render a Figure 3/4/5/6-style scatter (metric vs simulated seconds).

    Each dataset becomes its own series, mirroring how the paper colours
    its scatter points by dataset.
    """
    records = list(records)
    if not records:
        raise AnalysisError("no run records to plot")
    points = [(record.metric(metric), record.simulated_seconds) for record in records]
    labels = [record.dataset for record in records]
    return ascii_scatter(
        points,
        width=width,
        height=height,
        labels=labels,
        x_label=metric,
        y_label="simulated seconds",
        log_x=log_x,
    )


def loglog_histogram(
    histogram: Dict[int, int],
    width: int = 60,
    height: int = 16,
    x_label: str = "degree",
    y_label: str = "vertices",
) -> str:
    """Render a Figure 1-style log-log degree histogram as ASCII."""
    filtered = {degree: count for degree, count in histogram.items() if degree > 0 and count > 0}
    if not filtered:
        raise AnalysisError("histogram has no positive-degree entries to plot")
    points = [(math.log10(degree), math.log10(count)) for degree, count in filtered.items()]
    # Reuse the scatter renderer on the already-logged values.
    rendered = ascii_scatter(
        points,
        width=width,
        height=height,
        x_label=f"log10({x_label})",
        y_label=f"log10({y_label})",
        log_x=False,
    )
    return rendered
