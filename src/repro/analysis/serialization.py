"""Saving and loading experiment results.

Experiment sweeps are cheap to re-run at laptop scale but the paper-style
analysis (correlation tables, best-partitioner summaries) is often done
separately from the runs.  This module serialises run records and
simulation reports to plain JSON so results can be archived, diffed across
calibrations, and post-processed without re-running anything.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from ..core.io import PathLike, atomic_write_bytes
from ..engine.cost_model import SimulationReport
from ..errors import AnalysisError
from ..metrics.partition_metrics import PartitioningMetrics
from .results import RunRecord

__all__ = [
    "metrics_to_dict",
    "metrics_from_dict",
    "record_to_dict",
    "record_from_dict",
    "report_to_dict",
    "save_records",
    "load_records",
]

_METRIC_FIELDS = [
    "strategy",
    "num_partitions",
    "num_vertices",
    "num_edges",
    "balance",
    "non_cut",
    "cut",
    "comm_cost",
    "part_stdev",
    "total_replicas",
    "replication_factor",
    "vertices_to_same",
    "vertices_to_other",
    "max_partition_edges",
    "mean_partition_edges",
    "max_partition_vertices",
    "largest_edge_fraction",
    "largest_vertex_fraction",
]


def metrics_to_dict(metrics: PartitioningMetrics) -> Dict[str, object]:
    """Serialise a :class:`PartitioningMetrics` to a plain dict."""
    return {name: getattr(metrics, name) for name in _METRIC_FIELDS}


def metrics_from_dict(payload: Dict[str, object]) -> PartitioningMetrics:
    """Rebuild a :class:`PartitioningMetrics` from :func:`metrics_to_dict` output."""
    missing = [name for name in _METRIC_FIELDS if name not in payload]
    if missing:
        raise AnalysisError(f"metrics payload is missing fields: {missing}")
    return PartitioningMetrics(**{name: payload[name] for name in _METRIC_FIELDS})


def record_to_dict(record: RunRecord) -> Dict[str, object]:
    """Serialise a :class:`RunRecord` to a plain dict."""
    return {
        "dataset": record.dataset,
        "partitioner": record.partitioner,
        "num_partitions": record.num_partitions,
        "algorithm": record.algorithm,
        "simulated_seconds": record.simulated_seconds,
        "num_supersteps": record.num_supersteps,
        "backend": record.backend,
        "wall_seconds": record.wall_seconds,
        "metrics": metrics_to_dict(record.metrics),
    }


def record_from_dict(payload: Dict[str, object]) -> RunRecord:
    """Rebuild a :class:`RunRecord` from :func:`record_to_dict` output."""
    required = {"dataset", "partitioner", "num_partitions", "algorithm",
                "simulated_seconds", "num_supersteps", "metrics"}
    missing = required - set(payload)
    if missing:
        raise AnalysisError(f"run record payload is missing fields: {sorted(missing)}")
    return RunRecord(
        dataset=payload["dataset"],
        partitioner=payload["partitioner"],
        num_partitions=int(payload["num_partitions"]),
        algorithm=payload["algorithm"],
        metrics=metrics_from_dict(payload["metrics"]),
        simulated_seconds=float(payload["simulated_seconds"]),
        num_supersteps=int(payload["num_supersteps"]),
        # Provenance fields postdate the original payload format; archives
        # written before them load with the RunRecord defaults.
        backend=str(payload.get("backend", "reference")),
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
    )


def report_to_dict(report: SimulationReport) -> Dict[str, object]:
    """Serialise a :class:`SimulationReport` (cluster, totals and per-superstep rows)."""
    return {
        "cluster": {
            "name": report.cluster.name,
            "num_executors": report.cluster.num_executors,
            "cores_per_executor": report.cluster.cores_per_executor,
            "network_gbps": report.cluster.network_gbps,
            "storage": report.cluster.storage,
        },
        "load_seconds": report.load_seconds,
        "total_seconds": report.total_seconds,
        "compute_seconds": report.compute_seconds,
        "network_seconds": report.network_seconds,
        "total_messages": report.total_messages,
        "total_remote_messages": report.total_remote_messages,
        "total_bytes": report.total_bytes,
        "supersteps": [
            {
                "superstep": s.superstep,
                "active_vertices": s.active_vertices,
                "edges_scanned": s.edges_scanned,
                "messages_remote": s.messages_remote,
                "messages_local": s.messages_local,
                "bytes_remote": s.bytes_remote,
                "compute_seconds": s.compute_seconds,
                "network_seconds": s.network_seconds,
                "total_seconds": s.total_seconds,
            }
            for s in report.supersteps
        ],
    }


def save_records(records: Iterable[RunRecord], path: PathLike, indent: int = 2) -> None:
    """Write run records to a JSON file (atomically: write-then-rename)."""
    payload = [record_to_dict(record) for record in records]
    try:
        atomic_write_bytes(path, json.dumps(payload, indent=indent).encode("utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot write results to {path}: {exc}") from exc


def load_records(path: PathLike) -> List[RunRecord]:
    """Read run records back from a JSON file produced by :func:`save_records`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise AnalysisError(f"cannot read results from {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise AnalysisError(f"{path} does not contain a list of run records")
    return [record_from_dict(item) for item in payload]
