"""Experiment harness, correlation analysis and the cut-to-fit advisor."""

from .advisor import Recommendation, recommend_empirically, recommend_partitioner
from .correlation import correlation_table, correlation_with_time, pearson, spearman
from .plots import ascii_scatter, loglog_histogram, scatter_from_records
from .serialization import load_records, record_from_dict, record_to_dict, report_to_dict, save_records
from .sweep import GranularityPoint, GranularitySweep, sweep_granularity
from .experiments import (
    ExperimentConfig,
    InfrastructureResult,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from .results import (
    RunRecord,
    best_partitioner_per_dataset,
    group_by_dataset,
    records_to_rows,
)

__all__ = [
    "ExperimentConfig",
    "InfrastructureResult",
    "Recommendation",
    "RunRecord",
    "best_partitioner_per_dataset",
    "correlation_table",
    "ascii_scatter",
    "loglog_histogram",
    "scatter_from_records",
    "load_records",
    "record_from_dict",
    "record_to_dict",
    "report_to_dict",
    "save_records",
    "GranularityPoint",
    "GranularitySweep",
    "sweep_granularity",
    "correlation_with_time",
    "group_by_dataset",
    "pearson",
    "recommend_empirically",
    "recommend_partitioner",
    "records_to_rows",
    "run_algorithm_study",
    "run_infrastructure_study",
    "run_partitioning_study",
    "spearman",
]
