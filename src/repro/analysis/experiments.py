"""Experiment harness: the sweeps behind every table and figure.

Three entry points cover the paper's evaluation:

* :func:`run_partitioning_study` — Tables 2 and 3 (metrics of every
  partitioner on every dataset at one granularity);
* :func:`run_algorithm_study` — Figures 3-6 (simulated execution time of
  one algorithm for every dataset x partitioner at one granularity);
* :func:`run_infrastructure_study` — the Section 4 experiment that varies
  the network speed and storage medium (configurations ii/iii/iv).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..algorithms.registry import run_algorithm
from ..algorithms.shortest_paths import choose_landmarks
from ..backends import get_backend
from ..core.graph import Graph
from ..datasets.catalog import PAPER_DATASET_NAMES, load_dataset
from ..engine.cluster import ClusterConfig, paper_cluster
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import AnalysisError
from ..metrics.partition_metrics import PartitioningMetrics, compute_metrics
from ..partitioning.registry import (
    PAPER_PARTITIONER_NAMES,
    canonical_partitioner_name,
    make_partitioner,
)
from .results import RunRecord

__all__ = [
    "ExperimentConfig",
    "run_partitioning_study",
    "run_algorithm_study",
    "run_infrastructure_study",
    "InfrastructureResult",
]

#: Granularities used by the paper: configuration (i) and configuration (ii).
PAPER_GRANULARITIES = (128, 256)


@dataclass
class ExperimentConfig:
    """Parameters of one algorithm sweep (one panel of Figures 3-6)."""

    algorithm: str
    num_partitions: int = 128
    datasets: Sequence[str] = field(default_factory=lambda: list(PAPER_DATASET_NAMES))
    partitioners: Sequence[str] = field(default_factory=lambda: list(PAPER_PARTITIONER_NAMES))
    scale: float = 1.0
    seed: int = 0
    num_iterations: int = 10
    landmark_count: int = 5
    cluster: Optional[ClusterConfig] = None
    cost_parameters: Optional[CostParameters] = None
    #: Execution backend (see :mod:`repro.backends`).  ``reference`` is the
    #: only backend with a cluster cost model, so correlation studies
    #: should keep the default; ``vectorized`` records wall-clock time
    #: instead of simulated seconds.
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise AnalysisError("num_partitions must be >= 1")
        if self.scale <= 0:
            raise AnalysisError("scale must be positive")
        if self.num_iterations < 1:
            raise AnalysisError("num_iterations must be >= 1")
        # Strategy names are case-insensitive everywhere they are parsed;
        # records and tables always carry the canonical registry spelling.
        self.partitioners = [canonical_partitioner_name(name) for name in self.partitioners]


def _resolve_graphs(
    names: Sequence[str],
    scale: float,
    seed: int,
    graphs: Optional[Dict[str, Graph]] = None,
) -> Dict[str, Graph]:
    if graphs is not None:
        missing = [name for name in names if name not in graphs]
        if missing:
            raise AnalysisError(f"graphs missing for datasets: {missing}")
        return {name: graphs[name] for name in names}
    return {name: load_dataset(name, scale=scale, seed=seed) for name in names}


def run_partitioning_study(
    num_partitions: int,
    datasets: Sequence[str] = None,
    partitioners: Sequence[str] = None,
    scale: float = 1.0,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> Dict[str, List[PartitioningMetrics]]:
    """Compute Table 2/3: metrics of every partitioner on every dataset."""
    dataset_names = list(datasets or PAPER_DATASET_NAMES)
    partitioner_names = [
        canonical_partitioner_name(name)
        for name in (partitioners or PAPER_PARTITIONER_NAMES)
    ]
    resolved = _resolve_graphs(dataset_names, scale, seed, graphs)

    table: Dict[str, List[PartitioningMetrics]] = {}
    for dataset_name in dataset_names:
        graph = resolved[dataset_name]
        rows = []
        for partitioner_name in partitioner_names:
            strategy = make_partitioner(partitioner_name)
            assignment = strategy.assign(graph, num_partitions)
            # compute_metrics consumes the assignment's cached
            # VertexMembership arrays; no per-vertex dicts are built on
            # this path even at the paper's 128/256 granularities.
            rows.append(compute_metrics(assignment))
        table[dataset_name] = rows
    return table


def run_algorithm_study(
    config: ExperimentConfig,
    graphs: Optional[Dict[str, Graph]] = None,
) -> List[RunRecord]:
    """Run one algorithm over every (dataset, partitioner) pair of the config."""
    cluster = config.cluster or paper_cluster()
    resolved = _resolve_graphs(list(config.datasets), config.scale, config.seed, graphs)
    partition_oblivious = not get_backend(config.backend).uses_partitioning

    records: List[RunRecord] = []
    for dataset_name in config.datasets:
        graph = resolved[dataset_name]
        landmarks = None
        if config.algorithm.upper() == "SSSP":
            landmarks = choose_landmarks(graph, count=config.landmark_count, seed=config.seed + 7)
        result = None
        for partitioner_name in config.partitioners:
            pgraph = PartitionedGraph.partition(graph, partitioner_name, config.num_partitions)
            # A partition-oblivious backend (e.g. ``vectorized``) produces
            # identical results for every placement, so run it once per
            # dataset and reuse the outcome for each partitioner row.
            if result is None or not partition_oblivious:
                result = run_algorithm(
                    config.algorithm,
                    pgraph,
                    num_iterations=config.num_iterations,
                    landmarks=landmarks,
                    cluster=cluster,
                    cost_parameters=config.cost_parameters,
                    backend=config.backend,
                )
            records.append(
                RunRecord(
                    dataset=dataset_name,
                    partitioner=partitioner_name,
                    num_partitions=config.num_partitions,
                    algorithm=config.algorithm.upper(),
                    metrics=pgraph.metrics,
                    simulated_seconds=result.simulated_seconds,
                    num_supersteps=result.num_supersteps,
                    backend=result.backend,
                    wall_seconds=result.wall_seconds,
                )
            )
    return records


@dataclass(frozen=True)
class InfrastructureResult:
    """Simulated time of one infrastructure configuration (Section 4 study)."""

    label: str
    network_gbps: float
    storage: str
    simulated_seconds: float

    def speedup_vs(self, baseline: "InfrastructureResult") -> float:
        """Fractional time reduction relative to ``baseline`` (0.15 = 15% faster)."""
        if baseline.simulated_seconds == 0:
            return 0.0
        return 1.0 - self.simulated_seconds / baseline.simulated_seconds


def run_infrastructure_study(
    dataset: str = "follow-dec",
    partitioner: str = "2D",
    num_partitions: int = 256,
    algorithm: str = "PR",
    scale: float = 1.0,
    seed: int = 0,
    num_iterations: int = 10,
    graph: Optional[Graph] = None,
) -> List[InfrastructureResult]:
    """Reproduce the Section 4 infrastructure experiment.

    Configuration (ii) is the 1 Gbps / HDD baseline, configuration (iii)
    upgrades the network to 40 Gbps, configuration (iv) additionally moves
    shuffle storage to local SSDs.
    """
    if graph is None:
        graph = load_dataset(dataset, scale=scale, seed=seed)
    pgraph = PartitionedGraph.partition(graph, partitioner, num_partitions)

    configurations = [
        ("config-ii (1 Gbps, HDD)", paper_cluster(network_gbps=1.0, storage="hdd")),
        ("config-iii (40 Gbps, HDD)", paper_cluster(network_gbps=40.0, storage="hdd")),
        ("config-iv (40 Gbps, SSD)", paper_cluster(network_gbps=40.0, storage="ssd")),
    ]
    results = []
    for label, cluster in configurations:
        outcome = run_algorithm(
            algorithm,
            pgraph,
            num_iterations=num_iterations,
            cluster=cluster,
        )
        results.append(
            InfrastructureResult(
                label=label,
                network_gbps=cluster.network_gbps,
                storage=cluster.storage,
                simulated_seconds=outcome.simulated_seconds,
            )
        )
    return results
