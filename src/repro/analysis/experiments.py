"""Experiment harness: the sweeps behind every table and figure.

These entry points predate the declarative planner in
:mod:`repro.session` and are kept as thin backward-compatible wrappers
over it — same signatures, same record order, same values:

* :func:`run_partitioning_study` — Tables 2 and 3 (metrics of every
  partitioner on every dataset at one granularity);
* :func:`run_algorithm_study` — Figures 3-6 (simulated execution time of
  one algorithm for every dataset x partitioner at one granularity);
* :func:`run_infrastructure_study` — the Section 4 experiment that varies
  the network speed and storage medium (configurations ii/iii/iv).

Every wrapper accepts an optional ``session=``: pass one shared
:class:`~repro.session.Session` across calls and the studies reuse each
other's dataset loads and cached placements (a full Figure 3-6
reproduction then partitions each ``(dataset, partitioner, k)`` triple
exactly once).  New code should prefer ``session.plan()`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..algorithms.registry import run_algorithm
from ..core.graph import Graph
from ..datasets.catalog import PAPER_DATASET_NAMES
from ..engine.cluster import ClusterConfig, paper_cluster
from ..engine.cost_model import CostParameters
from ..errors import AnalysisError
from ..metrics.partition_metrics import PartitioningMetrics
from ..partitioning.registry import PAPER_PARTITIONER_NAMES, canonical_partitioner_name
from ..session import Session
from .results import RunRecord

__all__ = [
    "ExperimentConfig",
    "PAPER_GRANULARITIES",
    "run_partitioning_study",
    "run_algorithm_study",
    "run_infrastructure_study",
    "InfrastructureResult",
]

#: Granularities used by the paper: configuration (i) and configuration (ii).
PAPER_GRANULARITIES = (128, 256)


@dataclass
class ExperimentConfig:
    """Parameters of one algorithm sweep (one panel of Figures 3-6)."""

    algorithm: str
    num_partitions: int = 128
    datasets: Sequence[str] = field(default_factory=lambda: list(PAPER_DATASET_NAMES))
    partitioners: Sequence[str] = field(default_factory=lambda: list(PAPER_PARTITIONER_NAMES))
    scale: float = 1.0
    seed: int = 0
    num_iterations: int = 10
    landmark_count: int = 5
    cluster: Optional[ClusterConfig] = None
    cost_parameters: Optional[CostParameters] = None
    #: Execution backend (see :mod:`repro.backends`).  ``reference`` is the
    #: only backend with a cluster cost model, so correlation studies
    #: should keep the default; ``vectorized`` records wall-clock time
    #: instead of simulated seconds.
    backend: str = "reference"
    #: Shared-memory Pregel workers per run (``None``/1 = serial).  Results
    #: are bit-identical at any worker count; this is purely a wall-clock
    #: knob for the reference backend's Pregel algorithms.
    engine_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise AnalysisError("num_partitions must be >= 1")
        if self.scale <= 0:
            raise AnalysisError("scale must be positive")
        if self.num_iterations < 1:
            raise AnalysisError("num_iterations must be >= 1")
        if self.engine_workers is not None and int(self.engine_workers) < 1:
            raise AnalysisError("engine_workers must be >= 1")
        # Strategy names are case-insensitive everywhere they are parsed;
        # records and tables always carry the canonical registry spelling.
        self.partitioners = [canonical_partitioner_name(name) for name in self.partitioners]


def _session_for(
    scale: float,
    seed: int,
    graphs: Optional[Dict[str, Graph]],
    names: Sequence[str],
    session: Optional[Session],
) -> Session:
    """Resolve the session a wrapper call runs against.

    An explicit ``graphs`` dict must cover every requested dataset (the
    legacy harness contract); its entries are registered on the session so
    they are used regardless of scale/seed, exactly as before.  A shared
    session whose scale/seed differ from the requested ones is rejected
    unless every dataset it would have to load is already registered —
    otherwise the study would silently run at the wrong scale.
    """
    if graphs is not None:
        missing = [name for name in names if name not in graphs]
        if missing:
            raise AnalysisError(f"graphs missing for datasets: {missing}")
    if session is None:
        session = Session(scale=scale, seed=seed)
    if graphs is not None:
        for name in names:
            # adopt_graph (not add_graph): a conflicting name on a shared
            # session raises instead of silently swapping the dataset out
            # from under the session's other consumers.
            session.adopt_graph(name, graphs[name])
    if session.scale != scale or session.seed != seed:
        unregistered = [name for name in names if not session.is_registered(name)]
        if unregistered:
            raise AnalysisError(
                f"session (scale={session.scale}, seed={session.seed}) does not match "
                f"the requested scale={scale}, seed={seed}, and datasets {unregistered} "
                f"are not registered on it; pass matching values or register the graphs"
            )
    return session


def run_partitioning_study(
    num_partitions: int,
    datasets: Optional[Sequence[str]] = None,
    partitioners: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
    session: Optional[Session] = None,
) -> Dict[str, List[PartitioningMetrics]]:
    """Compute Table 2/3: metrics of every partitioner on every dataset.

    A metrics-only plan: no algorithm executes, every cell just resolves
    its placement through the session cache and reads the Section 3.1
    metrics.
    """
    dataset_names = list(datasets or PAPER_DATASET_NAMES)
    partitioner_names = list(partitioners or PAPER_PARTITIONER_NAMES)
    session = _session_for(scale, seed, graphs, dataset_names, session)
    plan = (
        session.plan()
        .datasets(dataset_names)
        .partitioners(partitioner_names)
        .granularities(num_partitions)
    )
    records = list(plan.run())
    # Chunk the dataset-major records back into per-dataset rows.  A
    # duplicated dataset name overwrites its earlier entry (one row per
    # partitioner), exactly as the legacy per-dataset assignment did.
    table: Dict[str, List[PartitioningMetrics]] = {}
    for index, name in enumerate(dataset_names):
        chunk = records[index * len(partitioner_names):(index + 1) * len(partitioner_names)]
        table[name] = [record.metrics for record in chunk]
    return table


def run_algorithm_study(
    config: ExperimentConfig,
    graphs: Optional[Dict[str, Graph]] = None,
    session: Optional[Session] = None,
) -> List[RunRecord]:
    """Run one algorithm over every (dataset, partitioner) pair of the config."""
    session = _session_for(config.scale, config.seed, graphs, list(config.datasets), session)
    plan = (
        session.plan()
        .datasets(config.datasets)
        .partitioners(config.partitioners)
        .granularities(config.num_partitions)
        .algorithms(config.algorithm)
        .backends(config.backend)
        .iterations(config.num_iterations)
        .landmarks(config.landmark_count, seed=config.seed + 7)
        .cluster(config.cluster or paper_cluster())
        .cost_parameters(config.cost_parameters)
        .engine_workers(config.engine_workers)
    )
    return list(plan.run())


@dataclass(frozen=True)
class InfrastructureResult:
    """Simulated time of one infrastructure configuration (Section 4 study)."""

    label: str
    network_gbps: float
    storage: str
    simulated_seconds: float

    def speedup_vs(self, baseline: "InfrastructureResult") -> float:
        """Fractional time reduction relative to ``baseline`` (0.15 = 15% faster)."""
        if baseline.simulated_seconds == 0:
            return 0.0
        return 1.0 - self.simulated_seconds / baseline.simulated_seconds


def run_infrastructure_study(
    dataset: str = "follow-dec",
    partitioner: str = "2D",
    num_partitions: int = 256,
    algorithm: str = "PR",
    scale: float = 1.0,
    seed: int = 0,
    num_iterations: int = 10,
    graph: Optional[Graph] = None,
    session: Optional[Session] = None,
) -> List[InfrastructureResult]:
    """Reproduce the Section 4 infrastructure experiment.

    Configuration (ii) is the 1 Gbps / HDD baseline, configuration (iii)
    upgrades the network to 40 Gbps, configuration (iv) additionally moves
    shuffle storage to local SSDs.  The placement is resolved through the
    session cache, so a shared session reuses it across studies.
    """
    if session is None:
        session = Session(scale=scale, seed=seed)
    if graph is not None:
        session.adopt_graph(dataset, graph)
    if (session.scale != scale or session.seed != seed) and not session.is_registered(dataset):
        raise AnalysisError(
            f"session (scale={session.scale}, seed={session.seed}) does not match "
            f"the requested scale={scale}, seed={seed}, and dataset {dataset!r} is "
            f"not registered on it; pass matching values or register the graph"
        )
    pgraph = session.partitioned(dataset, partitioner, num_partitions)

    configurations = [
        ("config-ii (1 Gbps, HDD)", paper_cluster(network_gbps=1.0, storage="hdd")),
        ("config-iii (40 Gbps, HDD)", paper_cluster(network_gbps=40.0, storage="hdd")),
        ("config-iv (40 Gbps, SSD)", paper_cluster(network_gbps=40.0, storage="ssd")),
    ]
    results = []
    for label, cluster in configurations:
        outcome = run_algorithm(
            algorithm,
            pgraph,
            num_iterations=num_iterations,
            cluster=cluster,
        )
        results.append(
            InfrastructureResult(
                label=label,
                network_gbps=cluster.network_gbps,
                storage=cluster.storage,
                simulated_seconds=outcome.simulated_seconds,
            )
        )
    return results
