"""REP004: blocking calls inside ``async def`` in the serve daemon.

The PR 6 daemon is a single asyncio event loop; one ``time.sleep`` or
synchronous ``open()`` on a request path stalls *every* connection,
including the health check CI polls.  Blocking work belongs behind
``loop.run_in_executor`` (which is exactly why nested *sync* functions
and lambdas inside an ``async def`` are exempt — they are the executor
payloads).

Flags, lexically inside an ``async def`` under ``repro/serve/``:

* ``time.sleep`` (use ``asyncio.sleep``);
* any ``subprocess.*`` call;
* any ``requests.*`` / ``urllib.request.*`` call;
* the builtin ``open()`` (use an executor for file IO);
* ``socket.create_connection`` / bare ``socket.socket().connect``.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import dotted_name, under

_BLOCKING_EXACT = {
    "time.sleep": "asyncio.sleep",
    "socket.create_connection": "asyncio.open_connection",
}

_BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.request.")


@rule(
    "REP004",
    severity="error",
    description="blocking call inside async def in the serve daemon",
    rationale="the PR 6 asyncio daemon serves every connection from one "
    "event loop; blocking work must go through run_in_executor",
    applies=under("repro/serve/"),
)
class BlockingAsyncRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter
        # Stack of enclosing function kinds; a call blocks the loop only
        # when the *innermost* enclosing function is async.
        self._stack = []

    def _in_async(self) -> bool:
        return bool(self._stack) and self._stack[-1] == "async"

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append("async")
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append("sync")
        self.generic_visit(node)
        self._stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._stack.append("sync")
        self.generic_visit(node)
        self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_async():
            name = dotted_name(node.func)
            if name is not None:
                if name in _BLOCKING_EXACT:
                    self.reporter.report(
                        node,
                        f"{name}() blocks the event loop; use "
                        f"{_BLOCKING_EXACT[name]} instead",
                    )
                elif name == "open":
                    self.reporter.report(
                        node,
                        "synchronous open() inside async def blocks the event "
                        "loop; run file IO in an executor",
                    )
                elif any(name.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
                    self.reporter.report(
                        node,
                        f"{name}() is synchronous IO inside async def; move it "
                        "behind loop.run_in_executor",
                    )
        self.generic_visit(node)
