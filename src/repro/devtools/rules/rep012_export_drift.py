"""REP012: ``__all__`` must match the module's actual public surface.

The repo's convention (since PR 1) is an explicit ``__all__`` per library
module; it is what ``from repro.x import *`` honours, what the API docs
enumerate, and what downstream sessions treat as stable.  Two drift
modes, both invisible per-file conventions reviews keep missing:

* a name listed in ``__all__`` that the module never defines or imports
  (usually a leftover from a rename) — an ``ImportError`` waiting inside
  every ``import *`` and a lie in the docs;
* a public (non-underscore) top-level symbol missing from the declared
  ``__all__`` — accidental API, reachable but unlisted.

Only modules that *declare* a literal ``__all__`` are checked (declaring
one is the opt-in); dynamically-built ``__all__`` (``+=`` etc.) is
skipped as unresolvable.  Dunder module metadata (``__version__``) is
not required to be exported.
"""

from __future__ import annotations

from ..engine import ProjectReporter, project_rule
from ..index import ProjectIndex


@project_rule(
    "REP012",
    severity="warning",
    description="__all__ drift: exported name undefined, or public symbol "
    "missing from a declared __all__",
    rationale="__all__ is the module's stable surface; drift breaks "
    "import * and silently widens or misstates the API",
)
class ExportDriftRule:
    def __init__(self, reporter: ProjectReporter) -> None:
        self.reporter = reporter

    def run(self, index: ProjectIndex) -> None:
        for info in index.library_modules():
            if info.exports is None or not info.exports_resolved:
                continue
            declared = set(info.exports)
            defined = set(info.definitions) | set(info.import_bindings)
            for name in sorted(declared - defined):
                self.reporter.report(
                    info.path,
                    info.exports_line or 1,
                    f"__all__ lists '{name}' but the module neither defines "
                    "nor imports it",
                    symbol=f"__all__:{name}",
                )
            for name, line in sorted(info.definitions.items()):
                if name.startswith("_") or name in declared:
                    continue
                self.reporter.report(
                    info.path,
                    line,
                    f"public symbol '{name}' is missing from __all__; export "
                    "it or rename it with a leading underscore",
                    symbol=name,
                )
