"""REP006: non-canonical name literals in partitioner/algorithm comparisons.

``canonical_partitioner_name`` and ``canonical_algorithm_name`` exist so
user-facing spellings (``"rvc"``, ``"PageRank"``) normalise once at the
boundary; comparing raw strings against a non-canonical literal
(``if name == "hybrid"`` or ``algo.lower() == "pr"``) silently bypasses
that funnel and breaks the moment input arrives in another case.

Flags ``==`` / ``!=`` / ``in`` / ``not in`` comparisons whose string
literal matches a registry name *case-insensitively but not exactly*
(``"pr"``, ``"hybrid"``, ``"PageRank"``).  Comparisons against the
canonical spelling (``key == "PR"`` after canonicalisation) are the
normal idiom and pass untouched.

The canonical vocabularies are imported from the live registries at
check time, so new partitioners/algorithms are covered automatically.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, Tuple

from ..engine import Reporter, rule
from .common import in_library


def _canonical_vocabulary() -> Tuple[FrozenSet[str], FrozenSet[str]]:
    try:
        from ...algorithms.registry import ALGORITHM_NAMES, _ALGORITHM_ALIASES
        from ...partitioning.registry import available_partitioners

        names = set(available_partitioners()) | set(ALGORITHM_NAMES)
        aliases = set(_ALGORITHM_ALIASES)
    except Exception:  # pragma: no cover - registries always import in-repo
        names = {
            "RVC", "1D", "2D", "CRVC", "SC", "DC",
            "DBH", "Greedy", "HDRF", "Fennel", "Hybrid",
            "PR", "CC", "TR", "SSSP",
        }
        aliases = {
            "PAGERANK", "CONNECTEDCOMPONENTS", "TRIANGLECOUNT",
            "TRIANGLES", "SHORTESTPATHS",
        }
    return frozenset(names), frozenset(aliases)


_CANONICAL, _ALIASES = _canonical_vocabulary()
_LOWER_TO_CANONICAL = {name.lower(): name for name in _CANONICAL}
_ALIASES_LOWER = frozenset(alias.lower() for alias in _ALIASES)


def _offending(value: object) -> bool:
    if not isinstance(value, str):
        return False
    lowered = value.lower()
    if lowered in _ALIASES_LOWER:
        # Long-form alias ("PageRank"): only canonical_algorithm_name
        # resolves these; any literal comparison is a bypass.
        return True
    canonical = _LOWER_TO_CANONICAL.get(lowered)
    return canonical is not None and value != canonical


def _literal_strings(node: ast.AST) -> Iterable[ast.Constant]:
    if isinstance(node, ast.Constant):
        yield node
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant):
                yield element


@rule(
    "REP006",
    severity="warning",
    description="string comparison against a non-canonical partitioner/"
    "algorithm spelling (bypasses canonical_*_name)",
    rationale="the canonical-name funnels exist so case-insensitive user "
    "spellings normalise once at the boundary",
    applies=in_library,
)
class CanonicalNameRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand, operator in zip(node.comparators, node.ops):
            if isinstance(operator, (ast.Eq, ast.NotEq)):
                # Either side of an equality may be the literal.
                candidates = list(_literal_strings(operand))
                if isinstance(node.left, ast.Constant):
                    candidates.extend(_literal_strings(node.left))
                for constant in candidates:
                    if _offending(constant.value):
                        self._flag(constant)
            elif isinstance(operator, (ast.In, ast.NotIn)):
                # Only literal containers are name comparisons; a literal
                # needle against a variable (dict membership) is not.
                if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                    for constant in _literal_strings(operand):
                        if _offending(constant.value):
                            self._flag(constant)
        self.generic_visit(node)

    def _flag(self, constant: ast.Constant) -> None:
        value = constant.value
        canonical = _LOWER_TO_CANONICAL.get(str(value).lower())
        hint = (
            f"compare against the canonical spelling {canonical!r}"
            if canonical is not None
            else "resolve it with canonical_algorithm_name() first"
        )
        self.reporter.report(
            constant,
            f"comparison against non-canonical name literal {value!r} bypasses "
            f"the canonical-name funnel; {hint}",
        )
