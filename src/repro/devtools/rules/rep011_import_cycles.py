"""REP011: no import cycles among ``repro.*`` modules.

The engine/session/serve layering only stays loadable because module
imports form a DAG; a cycle makes import order load-bearing (whichever
module imports first sees a half-initialised partner) and has already
forced function-scope imports in a few places.  This rule builds the
import graph from the :class:`~repro.devtools.index.ProjectIndex` —
module-level, non-``TYPE_CHECKING`` imports only, since a deliberate
function-scope import is the sanctioned way to break a cycle — and
reports each strongly connected component once, as a minimal cycle
(shortest loop through its first module), anchored at that module's
offending import line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..engine import ProjectReporter, project_rule
from ..index import ModuleInfo, ProjectIndex


def _edges(info: ModuleInfo, nodes: Set[str], index: ProjectIndex) -> Dict[str, int]:
    """Importable cycle edges from one module: target -> import line.

    ``from pkg import submodule`` resolves to the submodule when the
    index knows it, else to ``pkg`` itself; edges leaving the ``repro.*``
    library node set (or pointing home) are dropped.
    """
    targets: Dict[str, int] = {}
    for record in info.imports:
        if record.scope != "toplevel" or record.typing_only:
            continue
        resolved: List[str] = []
        if record.names:
            for name in record.names:
                dotted = f"{record.module}.{name}"
                resolved.append(dotted if dotted in index.by_module else record.module)
        else:
            resolved.append(record.module)
        for target in resolved:
            if target in nodes and target != info.module:
                targets.setdefault(target, record.line)
    return targets


def _strongly_connected(graph: Dict[str, Dict[str, int]]) -> List[List[str]]:
    """Iterative Tarjan; returns SCCs with >1 node (self-loops can't occur:
    ``_edges`` drops them)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    number: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[List[str]] = []

    for root in sorted(graph):
        if root in number:
            continue
        work = [(root, iter(sorted(graph[root])))]
        number[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in number:
                    number[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], number[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == number[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
    return components


def _minimal_cycle(start: str, component: Set[str], graph: Dict[str, Dict[str, int]]) -> List[str]:
    """Shortest cycle through ``start`` staying inside the component (BFS)."""
    parents: Dict[str, Optional[str]] = {start: None}
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for successor in sorted(graph[node]):
                if successor not in component:
                    continue
                if successor == start:
                    cycle = [node]
                    while parents[cycle[-1]] is not None:
                        cycle.append(parents[cycle[-1]])
                    return [start] + list(reversed(cycle))
                if successor not in parents:
                    parents[successor] = node
                    next_frontier.append(successor)
        frontier = next_frontier
    return sorted(component)  # unreachable for a true SCC; defensive


@project_rule(
    "REP011",
    severity="error",
    description="import cycle among repro.* modules",
    rationale="cycles make import order load-bearing; break them with an "
    "interface module or a deliberate function-scope import",
)
class ImportCycleRule:
    def __init__(self, reporter: ProjectReporter) -> None:
        self.reporter = reporter

    def run(self, index: ProjectIndex) -> None:
        library = {
            info.module: info
            for info in index.library_modules()
            if info.module.startswith("repro")
        }
        nodes = set(library)
        graph = {
            module: _edges(info, nodes, index) for module, info in library.items()
        }
        for component in _strongly_connected(graph):
            first = component[0]
            cycle = _minimal_cycle(first, set(component), graph)
            line = graph[first].get(cycle[1] if len(cycle) > 1 else first, 1)
            rendered = " -> ".join(cycle + [first])
            self.reporter.report(
                library[first].path,
                line or 1,
                f"import cycle: {rendered}; break it with an interface module "
                "or a function-scope import at the least-hot edge",
                symbol=rendered,
            )
