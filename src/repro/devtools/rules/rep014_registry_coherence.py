"""REP014: registry names must be wired through the CLI and tested.

The partitioner and algorithm registries are the project's extension
points: a name registered in ``partitioning/registry.py`` or
``algorithms/registry.py`` is a public knob.  PR 6's serve daemon and the
benchmark harness both resolve these names via the CLI surface, so a
registered-but-unreachable name is a silent dead knob, and an untested
one is a knob nobody notices breaking.  Per registered name this rule
requires, reading only the :class:`~repro.devtools.index.ProjectIndex`:

* **CLI leg** — the name appears in ``repro/cli.py`` either literally
  (a ``choices=[...]`` entry) or via the registry's dynamic accessors
  (``canonical_partitioner_name`` and friends), which expose every
  registered name at once; skipped when no ``cli.py`` is in the tree
  (fixture projects).
* **test leg** — some test mentions the name as a string literal
  (case-insensitive: CLI names are matched case-insensitively too).

Findings anchor at the registry collection so the fix-or-suppress
decision lands where the name was registered.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..engine import ProjectReporter, project_rule
from ..index import ModuleInfo, ProjectIndex

#: registry path suffix -> (collection names, dynamic CLI accessors, kind)
_REGISTRIES: Tuple[Tuple[str, Tuple[str, ...], frozenset, str], ...] = (
    (
        "partitioning/registry.py",
        ("_FACTORIES", "PAPER_PARTITIONER_NAMES", "EXTENSION_PARTITIONER_NAMES"),
        frozenset(
            {
                "available_partitioners",
                "canonical_partitioner_name",
                "make_partitioner",
                "PAPER_PARTITIONER_NAMES",
                "EXTENSION_PARTITIONER_NAMES",
            }
        ),
        "partitioner",
    ),
    (
        "algorithms/registry.py",
        ("ALGORITHM_NAMES",),
        frozenset({"ALGORITHM_NAMES", "canonical_algorithm_name", "make_algorithm"}),
        "algorithm",
    ),
)


def _registered_names(
    info: ModuleInfo, collections: Tuple[str, ...]
) -> Dict[str, int]:
    names: Dict[str, int] = {}
    for collection in collections:
        entry = info.literal_collections.get(collection)
        if entry is None:
            continue
        values, line = entry
        for value in values:
            names.setdefault(value, line)
    return names


def _cli_module(index: ProjectIndex) -> Optional[ModuleInfo]:
    for info in index.library_modules():
        if info.path.endswith("repro/cli.py"):
            return info
    return None


@project_rule(
    "REP014",
    severity="warning",
    description="registered partitioner/algorithm name missing from the CLI "
    "surface or untested",
    rationale="a registered name outside the CLI is a dead knob; an untested "
    "one is a knob nobody notices breaking",
)
class RegistryCoherenceRule:
    def __init__(self, reporter: ProjectReporter) -> None:
        self.reporter = reporter

    def run(self, index: ProjectIndex) -> None:
        cli = _cli_module(index)
        cli_literals = (
            frozenset(literal.lower() for literal in cli.string_literals)
            if cli is not None
            else frozenset()
        )
        test_literals = index.test_string_literals()
        for suffix, collections, accessors, kind in _REGISTRIES:
            for info in index.modules_matching(suffix):
                if info.is_test:
                    continue
                dynamic_cli = cli is not None and bool(cli.references & accessors)
                for name, line in sorted(_registered_names(info, collections).items()):
                    problems = []
                    if cli is not None and not dynamic_cli and name.lower() not in cli_literals:
                        problems.append("not reachable from the CLI")
                    if name.lower() not in test_literals:
                        problems.append("has no test referencing it")
                    if not problems:
                        continue
                    self.reporter.report(
                        info.path,
                        line,
                        f"registered {kind} '{name}' " + " and ".join(problems)
                        + "; wire it into the CLI choices and cover it with a test",
                        symbol=f"{kind}:{name}",
                    )
