"""REP010: resource handles must be closed on every exit path.

PRs 7-9 each grew code holding OS-backed handles — ``SharedMemory``
attachments, ``open()`` file objects, ``np.load(..., mmap_mode=...)``
maps — and the bugs that bit were never the happy path: they were the
early ``return`` before ``close()``, the ``raise`` that skipped
``unlink()``.  A per-file pattern match cannot see "some path misses the
release"; this rule can, because it runs a forward may-analysis over the
per-function CFG (:mod:`repro.devtools.cfg` / ``dataflow``).

A fact is born when a *local variable* is assigned from an acquisition
call (``open``/``fdopen``/``open_memmap``, ``SharedMemory(...)``,
``np.load`` with a non-None ``mmap_mode``).  The fact dies when the
variable is

* released: a ``.close()``/``.unlink()``/``.release()``/``.terminate()``/
  ``.shutdown()`` method call on it, or entering a ``with`` block
  (directly or via ``closing(v)``), or
* no longer this function's problem: the bare name escapes (returned,
  yielded, passed as an argument, stored in a container/attribute,
  captured by a nested ``def``) — ownership moved — or the variable is
  reassigned.

Using the handle (``v.read()``, ``v.buf``) keeps the fact alive: only the
*bare* name transfers ownership.  Any fact still live at the virtual EXIT
block means some path — fall-through, early return or explicit raise —
ends the function with the handle open, and is reported at the
acquisition site.  ``shm_registry.py`` owns its own segment lifecycle
protocol (REP003's jurisdiction) and is exempt.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Hashable, List, Set, Tuple

from ..cfg import Statement, Synthetic, WithEnter, build_cfg
from ..dataflow import GenKillAnalysis, solve_forward
from ..engine import Reporter, rule
from .common import in_library

#: Call-name tails that hand back a handle the caller must release.
#: ``os.fdopen`` is deliberately absent: it *adopts* an already-tracked
#: fd (acquired via ``os.open``) rather than acquiring anything new.
_ACQUIRE_TAILS = {"open", "open_memmap", "SharedMemory"}

#: Method names that release a handle.
_RELEASE_ATTRS = {"close", "unlink", "release", "terminate", "shutdown", "__exit__"}

#: Wrappers that adopt a handle into a ``with`` block.
_ADOPTING_WRAPPERS = {"closing", "ExitStack", "enter_context", "push"}


def _applies(path: str) -> bool:
    return in_library(path) and not path.endswith("engine/shm_registry.py")


def _call_tail(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_acquisition(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    tail = _call_tail(node)
    if tail in _ACQUIRE_TAILS:
        return True
    if tail == "load":  # np.load only leaks when it returns an open mmap
        for keyword in node.keywords:
            if keyword.arg == "mmap_mode":
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
    return False


class _StatementNames(ast.NodeVisitor):
    """Name roles within one statement, for the kill set.

    ``released``: receivers of release-method calls and handles adopted
    by ``closing(...)``-style wrappers.  ``escaped``: bare Name loads —
    a name that is only ever the *base of an attribute access* is a use,
    not an escape.  ``assigned``: Store-context bindings.
    """

    def __init__(self) -> None:
        self.released: Set[str] = set()
        self.escaped: Set[str] = set()
        self.assigned: Set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _RELEASE_ATTRS:
            if isinstance(func.value, ast.Name):
                self.released.add(func.value.id)
        if isinstance(func, ast.Name) and func.id in _ADOPTING_WRAPPERS or (
            isinstance(func, ast.Attribute) and func.attr in _ADOPTING_WRAPPERS
        ):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.released.add(arg.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # The receiver name is a use, not an escape; anything deeper
        # (subscripts, calls inside the chain) is visited normally.
        if isinstance(node.value, ast.Name):
            for child in ast.iter_child_nodes(node):
                if child is not node.value:
                    self.visit(child)
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.escaped.add(node.id)
        else:
            self.assigned.add(node.id)


def _statement_names(statement: Statement) -> _StatementNames:
    names = _StatementNames()
    if isinstance(statement, Synthetic):
        names.visit(statement.node)
        if statement.bind is not None:
            names.visit(statement.bind)
    elif isinstance(statement, WithEnter):
        item = statement.item
        if isinstance(item.context_expr, ast.Name):
            names.released.add(item.context_expr.id)
        else:
            names.visit(item.context_expr)
            if isinstance(item.context_expr, ast.Call):
                for arg in item.context_expr.args:
                    if isinstance(arg, ast.Name):
                        names.released.add(arg.id)
        if item.optional_vars is not None:
            names.visit(item.optional_vars)
    else:
        names.visit(statement)
    return names


#: A live handle: (variable name, acquisition call node).
_Fact = Tuple[str, ast.AST]


class _HandleLiveness(GenKillAnalysis):
    def gen(self, statement: Statement, facts: FrozenSet[Hashable]) -> FrozenSet[Hashable]:
        born: List[_Fact] = []
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            value = statement.value
            if value is not None and _is_acquisition(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        born.append((target.id, value))
        return frozenset(born)

    def kill(self, statement: Statement, facts: FrozenSet[Hashable]) -> FrozenSet[Hashable]:
        if not facts:
            return frozenset()
        names = _statement_names(statement)
        dead = names.released | names.escaped | names.assigned
        if not dead:
            return frozenset()
        return frozenset(fact for fact in facts if fact[0] in dead)


@rule(
    "REP010",
    severity="error",
    description="resource handle (SharedMemory/open/np.load mmap) has an exit "
    "path that never releases it",
    rationale="PR 7/9 leak guarantees require every handle to reach "
    "close/unlink/with on all paths, including early returns and raises",
    applies=_applies,
)
class ResourceLifecycleRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def _check_function(self, node) -> None:
        cfg = build_cfg(node)
        result = solve_forward(cfg, _HandleLiveness())
        leaked = sorted(
            result.at_exit(cfg),
            key=lambda fact: (getattr(fact[1], "lineno", 0), fact[0]),
        )
        for name, site in leaked:
            self.reporter.report(
                site,
                f"handle '{name}' may reach an exit of '{node.name}' without "
                "close/unlink/with; release it on every path (try/finally or "
                "a with block), or hand ownership off explicitly",
            )
        self.generic_visit(node)  # nested defs get their own CFG

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function
