"""Rule registry: importing this package registers every REP rule.

One module per rule.  Each module defines a single
:class:`ast.NodeVisitor` decorated with :func:`repro.devtools.engine.rule`,
which adds it to the engine's registry as an import side effect.  New
rules only need a new module imported here — the engine, CLI, baseline
and ``--list-rules`` all read the shared registry.
"""

from . import (  # noqa: F401
    rep001_optional_defaults,
    rep002_fold_order,
    rep003_shm_lifecycle,
    rep004_blocking_async,
    rep005_deprecated_shims,
    rep006_canonical_names,
    rep007_swallowed_errors,
    rep008_unseeded_random,
    rep009_whole_graph_materialization,
    rep010_resource_lifecycle,
    rep011_import_cycles,
    rep012_export_drift,
    rep013_dead_private,
    rep014_registry_coherence,
)

from .common import in_library, in_tests, under  # noqa: F401
