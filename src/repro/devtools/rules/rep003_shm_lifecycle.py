"""REP003: shared-memory lifecycle outside the ShmRegistry.

PR 7's leak guarantees (atexit/SIGTERM unlink, ``weakref.finalize``
teardown, the session-wide ``/dev/shm`` guard) hold only because every
``SharedMemory(create=True)`` and every ``.unlink()`` goes through
``repro/engine/shm_registry.py``.  A segment created anywhere else is
invisible to the registry and survives the process as a ``/dev/shm``
leak; an unlink anywhere else can tear a segment out from under attached
workers.

Flags, outside ``shm_registry.py``:

* any ``SharedMemory(...)`` call with ``create=True``;
* zero-argument ``.unlink()`` on a receiver whose name suggests a
  shared-memory handle (contains ``shm``, ``segment``, ``shared`` or
  ``memory``) — plain ``Path.unlink()`` receivers are left alone.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import dotted_name, in_library

_SHM_RECEIVER_HINTS = ("shm", "segment", "shared", "memory")


def _applies(path: str) -> bool:
    return in_library(path) and not path.endswith("engine/shm_registry.py")


@rule(
    "REP003",
    severity="error",
    description="SharedMemory(create=True) or shm .unlink() outside shm_registry.py",
    rationale="PR 7's leak/teardown guarantees require all segment "
    "lifecycle to go through ShmRegistry",
    applies=_applies,
)
class ShmLifecycleRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        if name.split(".")[-1] == "SharedMemory":
            for keyword in node.keywords:
                if (
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    self.reporter.report(
                        node,
                        "SharedMemory(create=True) outside shm_registry.py "
                        "escapes the registry's leak/teardown guarantees; "
                        "publish through ShmRegistry instead",
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"
            and not node.args
        ):
            receiver = dotted_name(node.func.value) or ""
            lowered = receiver.lower()
            if any(hint in lowered for hint in _SHM_RECEIVER_HINTS):
                self.reporter.report(
                    node,
                    f"{receiver}.unlink() outside shm_registry.py can tear a "
                    "segment out from under attached workers; route teardown "
                    "through ShmRegistry",
                )
        self.generic_visit(node)
