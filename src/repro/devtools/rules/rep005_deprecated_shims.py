"""REP005: deprecated-shim usage outside the shims' own homes.

Two compatibility shims survive for the seed's sake and for tests that
prove they still work — nothing else may grow new dependencies on them:

* ``PartitionAssignment.vertex_partitions()`` — the seed's
  dict-of-frozensets view; the array-native ``membership()`` CSR model
  (PR 3) replaced it on every hot path.
* the ``"pocek"`` dataset alias — the historical misspelling of
  ``"pokec"``, kept as a ``DeprecationWarning`` shim (PR 5).

Allowed homes: ``tests/`` (which pin the shims' behaviour),
``partitioning/base.py`` (defines ``vertex_partitions``) and
``datasets/catalog.py`` (defines the alias table).
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import in_library

_DEFINING_MODULES = ("partitioning/base.py", "datasets/catalog.py")


def _applies(path: str) -> bool:
    return in_library(path) and not path.endswith(_DEFINING_MODULES)


@rule(
    "REP005",
    severity="warning",
    description="deprecated shim (vertex_partitions() / 'pocek' alias) "
    "outside tests and the defining modules",
    rationale="PR 3 replaced the dict view with CSR membership; PR 5 "
    "renamed pocek->pokec behind a DeprecationWarning",
    applies=_applies,
)
class DeprecatedShimRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "vertex_partitions"
        ):
            self.reporter.report(
                node,
                "vertex_partitions() is the seed's deprecated dict view; use "
                "membership() (CSR VertexMembership) instead",
            )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if node.value == "pocek":  # repro: noqa[REP005]
            self.reporter.report(
                node,
                "'pocek' is the deprecated misspelling of the pokec dataset; "
                "use 'pokec'",
            )
