"""REP009: whole-graph materialisation inside the out-of-core path.

PR 9's bounded-memory guarantee — ingest and execution peak at
``O(chunk_edges + vertices)``, never ``O(edges)`` — holds only while the
out-of-core modules (``repro/ooc/``) and the streaming partitioners
(``partitioning/greedy.py``, ``partitioning/streaming.py``) touch edges
one bounded chunk at a time.  A single call that realises the full edge
list silently re-inflates the resident set to the in-memory path's and
turns the ``bench_out_of_core`` RSS assertion into a coin flip.

Flags, inside those files:

* calls to the whole-graph accessor methods ``.edges()``,
  ``.edge_set()`` and ``.edge_pairs()`` (including wrapped forms such as
  ``list(graph.edge_pairs())`` — the inner call is what is flagged);
* full-array copies of a graph's edge columns: ``np.asarray``,
  ``np.array``, ``np.copy`` or ``np.fromiter`` applied to an attribute
  chain ending in ``.src`` or ``.dst`` (slicing a bounded view stays
  legal; copying the whole column does not).

Deliberate exceptions (e.g. the equivalence-mode bridge that rebuilds an
in-memory graph from a shard on request) carry ``# repro: noqa[REP009]``
with a comment saying why the materialisation is intended.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import dotted_name

#: Accessors that realise every edge of the receiver at once.
_MATERIALIZING_METHODS = frozenset({"edges", "edge_set", "edge_pairs"})

#: numpy constructors that copy their argument wholesale.
_COPYING_CONSTRUCTORS = frozenset(
    {"np.asarray", "np.array", "np.copy", "np.fromiter", "numpy.asarray", "numpy.array", "numpy.copy", "numpy.fromiter"}
)

#: Edge-column attributes whose full copy is an O(edges) allocation.
_EDGE_COLUMNS = frozenset({"src", "dst"})

#: Path fragments the rule applies to: the out-of-core package plus the
#: streaming partitioners its ingest path drives.
_STREAMING_FRAGMENTS = (
    "repro/ooc/",
    "partitioning/greedy.py",
    "partitioning/streaming.py",
)


def _applies(path: str) -> bool:
    return any(fragment in path for fragment in _STREAMING_FRAGMENTS)


@rule(
    "REP009",
    severity="error",
    description="whole-graph materialisation in out-of-core/streaming code",
    rationale="the out-of-core path's bounded-memory guarantee requires "
    "edges to be touched one chunk at a time, never realised wholesale",
    applies=_applies,
)
class WholeGraphMaterializationRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MATERIALIZING_METHODS
        ):
            receiver = dotted_name(node.func.value) or "<expr>"
            self.reporter.report(
                node,
                f"{receiver}.{node.func.attr}() realises every edge at once; "
                "stream bounded (src, dst) chunks instead "
                "(EdgeChunkSource.chunks / assign_chunk)",
            )
        name = dotted_name(node.func)
        if name in _COPYING_CONSTRUCTORS and node.args:
            target = node.args[0]
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _EDGE_COLUMNS
            ):
                column = dotted_name(target) or f"<expr>.{target.attr}"
                self.reporter.report(
                    node,
                    f"{name}({column}) copies a full edge column "
                    "(O(edges) resident); slice a bounded view per chunk "
                    "instead",
                )
        self.generic_visit(node)
