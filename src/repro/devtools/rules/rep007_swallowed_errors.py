"""REP007: bare ``except:`` anywhere, swallowed ``KeyError`` in the engine.

A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and has
repeatedly hidden real failures; library code must name what it catches.
Inside ``repro/engine/`` the stakes are higher: message routing raises
``EngineError`` on unknown targets precisely because an earlier bug
swallowed the ``KeyError`` and silently dropped messages — so an
``except KeyError:`` whose body is only ``pass``/``continue``/``...``
is flagged there too.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import in_library, under


def _names_keyerror(handler_type: ast.AST) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id == "KeyError"
    if isinstance(handler_type, ast.Tuple):
        return any(_names_keyerror(element) for element in handler_type.elts)
    return False


def _body_swallows(body) -> bool:
    return all(
        isinstance(statement, (ast.Pass, ast.Continue))
        or (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        )
        for statement in body
    )


@rule(
    "REP007",
    severity="error",
    description="bare except: (library-wide) or swallowed KeyError in "
    "engine message-routing code",
    rationale="unknown message targets must surface as EngineError, not "
    "vanish; a swallowed KeyError once silently dropped messages",
    applies=in_library,
)
class SwallowedErrorRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter
        self._in_engine = under("repro/engine/")(reporter.path)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.reporter.report(
                node,
                "bare except: catches SystemExit/KeyboardInterrupt; name the "
                "exceptions (ReproError subclasses for library failures)",
            )
        elif (
            self._in_engine
            and _names_keyerror(node.type)
            and _body_swallows(node.body)
        ):
            self.reporter.report(
                node,
                "swallowed KeyError in engine code can silently drop routed "
                "messages; raise EngineError (unknown target) or handle the "
                "miss explicitly",
            )
        self.generic_visit(node)
