"""Shared path predicates and AST helpers for the REP rules.

Path predicates match on POSIX path *fragments* rather than anchored
roots, so rules apply identically to ``src/repro/engine/foo.py`` in the
repo, an installed ``.../site-packages/repro/engine/foo.py``, and the
seeded temp trees the regression tests build under ``/tmp``.
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = [
    "under",
    "in_tests",
    "in_library",
    "dotted_name",
    "call_name",
]


def under(fragment: str):
    """Predicate: path contains ``fragment`` as a path fragment."""

    def predicate(path: str) -> bool:
        return fragment in path

    return predicate


def in_tests(path: str) -> bool:
    """Whether ``path`` is a test file (``tests/`` tree or ``test_*.py``)."""
    return (
        "/tests/" in path
        or path.startswith("tests/")
        or path.rsplit("/", 1)[-1].startswith("test_")
        or path.rsplit("/", 1)[-1] == "conftest.py"
    )


def in_library(path: str) -> bool:
    """Whether ``path`` is library code (the ``repro`` package itself)."""
    return "repro/" in path and not in_tests(path)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` Name/Attribute chains to ``"a.b.c"`` (else None)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``np.add.at(...)`` -> ``"np.add.at"``)."""
    return dotted_name(node.func)
