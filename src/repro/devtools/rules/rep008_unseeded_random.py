"""REP008: unseeded randomness in library code.

Every result in this repo is reproducible by construction — datasets,
landmark choices and hash partitioners all derive from an explicit seed,
and the equivalence zoo asserts bit-identical values across executors.
One ``np.random.default_rng()`` (no seed) or module-level ``random.*``
call (shared global state, racy across the thread/process executors)
breaks that silently.

Flags, in library code:

* ``np.random.default_rng()`` / ``numpy.random.default_rng()`` with no
  arguments;
* ``random.<fn>(...)`` calls on the stdlib module's global state
  (``random.random``, ``random.randint``, ``random.shuffle``, ...) —
  a seeded ``random.Random(seed)`` instance is the accepted spelling.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import dotted_name, in_library

_DEFAULT_RNG_CALLS = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "default_rng",
}


@rule(
    "REP008",
    severity="warning",
    description="unseeded default_rng() or module-level random.* in library code",
    rationale="reproducibility is seed-derived end to end; global RNG "
    "state is also racy under the thread/process executors",
    applies=in_library,
)
class UnseededRandomRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in _DEFAULT_RNG_CALLS and not node.args and not node.keywords:
            self.reporter.report(
                node,
                f"{name}() without a seed is nondeterministic; thread the "
                "caller's seed through (default_rng(seed))",
            )
        elif (
            name is not None
            and name.startswith("random.")
            and name.count(".") == 1
            and name != "random.Random"
        ):
            self.reporter.report(
                node,
                f"{name}() uses the stdlib's global RNG state (unseeded and "
                "racy under executors); use a seeded random.Random or "
                "numpy Generator",
            )
        self.generic_visit(node)
