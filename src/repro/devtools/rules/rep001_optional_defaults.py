"""REP001: annotated-non-``Optional`` parameter or field with ``None`` default.

Four of the first six PRs independently re-fixed this bug class (PRs 2,
4, 5, 6): a parameter annotated ``labels: Sequence[str]`` but defaulted
to ``None`` lies to every reader and type checker, and downstream code
that trusts the annotation crashes on the default.  The annotation must
admit ``None`` — ``Optional[X]``, ``X | None``, ``Union[..., None]`` —
whenever ``None`` is the default.

Covers positional, keyword-only and class-body (dataclass-field)
annotations alike.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..engine import Reporter, rule

#: Annotations that already admit None (or anything at all).
_PERMISSIVE_NAMES = {"Any", "object", "None"}


def _annotation_allows_none(annotation: ast.AST) -> bool:
    """Whether an annotation expression admits ``None`` as a value."""
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True
        if isinstance(annotation.value, str):
            # String annotation: fall back to a textual check.
            text = annotation.value
            return "Optional" in text or "None" in text or "Any" in text
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _PERMISSIVE_NAMES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _PERMISSIVE_NAMES
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", "")
        if head_name == "Optional":
            return True
        if head_name == "Union":
            slice_node = annotation.slice
            elements = slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
            return any(_annotation_allows_none(element) for element in elements)
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_allows_none(annotation.left) or _annotation_allows_none(
            annotation.right
        )
    return False


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@rule(
    "REP001",
    severity="error",
    description="annotated non-Optional parameter/field with a None default",
    rationale="re-fixed independently in PRs 2, 4, 5 and 6",
)
class OptionalDefaultRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    # -- function signatures ------------------------------------------
    def _check_args(self, node) -> None:
        args = node.args
        pairs: List[Tuple[ast.arg, Optional[ast.AST]]] = []
        positional = args.posonlyargs + args.args
        defaults: List[Optional[ast.AST]] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        pairs.extend(zip(positional, defaults))
        pairs.extend(zip(args.kwonlyargs, args.kw_defaults))
        for argument, default in pairs:
            if argument.annotation is None or not _is_none(default):
                continue
            if not _annotation_allows_none(argument.annotation):
                self.reporter.report(
                    argument,
                    f"parameter {argument.arg!r} is annotated "
                    f"{ast.unparse(argument.annotation)!r} but defaults to None; "
                    "annotate it Optional[...] (or drop the None default)",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    # -- annotated assignments (dataclass fields, module globals) -----
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_none(node.value) and not _annotation_allows_none(node.annotation):
            target = ast.unparse(node.target)
            self.reporter.report(
                node,
                f"{target!r} is annotated {ast.unparse(node.annotation)!r} but "
                "assigned None; annotate it Optional[...]",
            )
        self.generic_visit(node)
