"""REP013: private functions nobody calls are dead code.

A ``_name`` function or method is by convention internal to the project,
so "no reference anywhere in the whole tree" is decidable — and nine PRs
of refactors (engine rewrites in PR 7, the runner split in PR 8, the
shard ingestion rework in PR 9) each stranded helpers whose callers
moved on.  Dead private code still costs review attention and keeps
bit-rotting signatures alive.

References are collected project-wide from the index: any ``Name`` load,
any attribute access (``self._helper()``), and any identifier-shaped
string literal (``getattr``/dispatch-table indirection) count, and tests
count as references — a helper only a test exercises is *reachable*, not
dead.  Dunder names, the bare ``_`` throwaway, and ``__init__``-style
methods are out of scope.
"""

from __future__ import annotations

from ..engine import ProjectReporter, project_rule
from ..index import ProjectIndex


@project_rule(
    "REP013",
    severity="warning",
    description="private function/method never referenced anywhere in the "
    "project (tests included)",
    rationale="stranded helpers from refactors keep dead signatures alive; "
    "delete them or wire them back in",
)
class DeadPrivateRule:
    def __init__(self, reporter: ProjectReporter) -> None:
        self.reporter = reporter

    def run(self, index: ProjectIndex) -> None:
        referenced = index.all_references()
        for info in index.library_modules():
            for function in info.functions:
                name = function.name
                if not name.startswith("_") or name.startswith("__") or name == "_":
                    continue
                if name in referenced:
                    continue
                kind = "method" if function.is_method else "function"
                self.reporter.report(
                    info.path,
                    function.line,
                    f"private {kind} '{function.qualname}' is never referenced "
                    "anywhere in the project; delete it or call it",
                    symbol=function.qualname,
                )
