"""REP002: buffered fancy-index accumulation inside the engine.

The parallel executor's bit-identical-to-serial guarantee (PR 7) rests on
every message fold using *unbuffered* ``ufunc.at`` — ``np.add.at(out,
idx, values)`` applies repeated indices sequentially, whereas
``out[idx] += values`` silently drops all but one contribution per
duplicated index and ``np.add(..., out=out[idx])`` buffers through a
temporary.  Inside ``repro/engine/`` any fancy-index accumulation must go
through the merge ufunc's ``.at``.

Heuristics (scalar indices in Python loops are fine and common):

* ``target[idx] += x`` is flagged when the index is a *call* (e.g.
  ``np.nonzero(m)``), a *slice* subscript (``order[:n]``), or a
  name/attribute whose terminal name conventionally denotes an index
  array (``idx``, ``indices``, ``ids``, ``slots``, ``mask``,
  ``inverse``, ``perm``, ``sources``, ``targets``, ``srcs``, ``dsts``
  or an ``_idx``/``_indices``/``_ids``/``_slots`` suffix).
* ``np.add(..., out=target[...])`` and friends are always flagged.

False positives take an inline ``# repro: noqa[REP002]``.
"""

from __future__ import annotations

import ast

from ..engine import Reporter, rule
from .common import call_name, under

_ARRAYISH_NAMES = {
    "idx",
    "indices",
    "index_array",
    "ids",
    "slots",
    "mask",
    "inverse",
    "perm",
    "permutation",
    "sources",
    "targets",
    "srcs",
    "dsts",
}

_ARRAYISH_SUFFIXES = ("_idx", "_indices", "_ids", "_slots", "_mask", "_perm")

#: Buffered ufuncs whose ``out=`` form loses the serial fold order.
_BUFFERED_UFUNCS = {"add", "subtract", "multiply", "minimum", "maximum", "logaddexp"}


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _index_is_arrayish(index: ast.AST) -> bool:
    if isinstance(index, ast.Call):
        return True
    if isinstance(index, ast.Subscript) and isinstance(index.slice, ast.Slice):
        return True
    name = _terminal_name(index)
    return bool(name) and (
        name in _ARRAYISH_NAMES or name.endswith(_ARRAYISH_SUFFIXES)
    )


@rule(
    "REP002",
    severity="error",
    description="buffered fancy-index accumulation in engine code "
    "(use the merge ufunc's unbuffered .at)",
    rationale="the PR 7 parallel executor is bit-identical to serial only "
    "through unbuffered ufunc.at folds",
    applies=under("repro/engine/"),
)
class FoldOrderRule(ast.NodeVisitor):
    def __init__(self, reporter: Reporter) -> None:
        self.reporter = reporter

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript) and _index_is_arrayish(target.slice):
            self.reporter.report(
                node,
                f"in-place accumulation {ast.unparse(target)!r} buffers duplicate "
                "indices; use an unbuffered ufunc.at fold to preserve the serial "
                "fold order",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) >= 2
                and parts[0] in ("np", "numpy")
                and parts[-1] in _BUFFERED_UFUNCS
            ):
                for keyword in node.keywords:
                    if keyword.arg == "out" and isinstance(keyword.value, ast.Subscript):
                        self.reporter.report(
                            node,
                            f"{name}(..., out={ast.unparse(keyword.value)}) is a "
                            "buffered accumulation; use the unbuffered "
                            f"{name}.at form",
                        )
        self.generic_visit(node)
