"""``repro check`` command logic (argparse-facing side of devtools).

Kept out of :mod:`repro.cli` so the analyser stays importable and
testable without the full CLI, and out of :mod:`~repro.devtools.engine`
so the engine knows nothing about argparse, stdout or exit codes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import StaticCheckError
from ..metrics.report import format_table
from .engine import (
    Finding,
    apply_baseline,
    check_paths,
    load_baseline,
    select_rules,
    write_baseline,
)

__all__ = ["run_check", "default_check_paths", "list_rules_rows"]

#: Directories checked when no paths are given, in walk order.
DEFAULT_CHECK_DIRS = ("src", "tests", "benchmarks", "examples")


def default_check_paths(root: Optional[Path] = None) -> List[Path]:
    """The default check targets that exist under ``root`` (cwd)."""
    base = root or Path.cwd()
    found = [base / name for name in DEFAULT_CHECK_DIRS if (base / name).is_dir()]
    if not found:
        raise StaticCheckError(
            f"no default check targets ({', '.join(DEFAULT_CHECK_DIRS)}) under "
            f"{base}; pass explicit paths"
        )
    return found


def list_rules_rows() -> List[Dict[str, object]]:
    """``--list-rules`` table rows, one per registered rule."""
    from .engine import all_rules

    return [
        {
            "rule": meta.rule_id,
            "severity": meta.severity,
            "description": meta.description,
        }
        for meta in all_rules().values()
    ]


def _json_document(
    new: Sequence[Finding],
    *,
    files_checked: int,
    rule_ids: Sequence[str],
    baselined: int,
    stale: Sequence[str],
    exit_code: int,
) -> Dict[str, object]:
    return {
        "version": 1,
        "files_checked": files_checked,
        "rules": list(rule_ids),
        "findings": [finding.as_dict() for finding in new],
        "baselined": baselined,
        "stale_baseline": list(stale),
        "exit_code": exit_code,
    }


def run_check(args) -> int:
    """Execute ``repro check`` for a parsed argparse namespace.

    Returns 0 when every finding is suppressed or baselined, 1 when new
    findings remain; configuration problems raise
    :class:`~repro.errors.StaticCheckError` (exit 2 via the CLI).
    """
    if args.list_rules:
        print(format_table(list_rules_rows()))
        return 0

    selected = select_rules(args.rule)
    paths = [Path(p) for p in args.paths] if args.paths else default_check_paths()
    findings, files_checked = check_paths(paths, rules=selected)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        if baseline_path is None:
            raise StaticCheckError("--write-baseline requires --baseline PATH")
        baseline = write_baseline(findings, baseline_path)
        print(
            f"repro check: wrote {baseline.total} grandfathered finding(s) "
            f"({len(baseline.entries)} fingerprints) to {baseline_path}"
        )
        return 0

    baselined = 0
    stale: List[str] = []
    new = list(findings)
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        new, baselined, stale = apply_baseline(findings, baseline)

    exit_code = 1 if new else 0
    document = _json_document(
        new,
        files_checked=files_checked,
        rule_ids=list(selected),
        baselined=baselined,
        stale=stale,
        exit_code=exit_code,
    )
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        for finding in new:
            print(str(finding))
        summary = (
            f"repro check: {len(new)} new finding(s), {baselined} baselined, "
            f"{files_checked} file(s), {len(selected)} rule(s)"
        )
        print(summary)
        for fingerprint in stale:
            print(
                f"repro check: stale baseline entry (already fixed): {fingerprint}",
                file=sys.stderr,
            )
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    return exit_code
