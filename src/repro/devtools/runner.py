"""``repro check`` command logic (argparse-facing side of devtools).

Kept out of :mod:`repro.cli` so the analyser stays importable and
testable without the full CLI, and out of :mod:`~repro.devtools.engine`
so the engine knows nothing about argparse, stdout or exit codes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import StaticCheckError
from ..metrics.report import format_table
from .engine import (
    CheckReport,
    Finding,
    analyze,
    apply_baseline,
    load_baseline,
    select_rules,
    write_baseline,
)

__all__ = ["DEFAULT_CHECK_DIRS", "run_check", "default_check_paths", "list_rules_rows"]

#: Directories checked when no paths are given, in walk order.
DEFAULT_CHECK_DIRS = ("src", "tests", "benchmarks", "examples")


def default_check_paths(root: Optional[Path] = None) -> List[Path]:
    """The default check targets that exist under ``root`` (cwd)."""
    base = root or Path.cwd()
    found = [base / name for name in DEFAULT_CHECK_DIRS if (base / name).is_dir()]
    if not found:
        raise StaticCheckError(
            f"no default check targets ({', '.join(DEFAULT_CHECK_DIRS)}) under "
            f"{base}; pass explicit paths"
        )
    return found


def list_rules_rows() -> List[Dict[str, object]]:
    """``--list-rules`` table rows, one per registered rule."""
    from .engine import all_rules

    return [
        {
            "rule": meta.rule_id,
            "severity": meta.severity,
            "scope": meta.scope,
            "description": meta.description,
        }
        for meta in all_rules().values()
    ]


def _statistics(report: CheckReport, findings: Sequence[Finding]) -> Dict[str, object]:
    """The ``--statistics`` payload: per-rule counts plus wall-clock split."""
    per_rule: Dict[str, Dict[str, object]] = {}
    for rule_id in report.rule_ids:
        paths = {f.path for f in findings if f.rule == rule_id}
        count = sum(1 for f in findings if f.rule == rule_id)
        per_rule[rule_id] = {"findings": count, "files": len(paths)}
    return {
        "per_rule": per_rule,
        "parse_seconds": round(report.parse_seconds, 6),
        "analysis_seconds": round(report.analysis_seconds, 6),
    }


def _json_document(
    new: Sequence[Finding],
    *,
    report: CheckReport,
    baselined: int,
    stale: Sequence[str],
    exit_code: int,
    statistics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    document: Dict[str, object] = {
        "version": 1,
        "files_checked": report.files_checked,
        "files_cached": report.files_cached,
        "files_analyzed": report.files_analyzed,
        "jobs": report.jobs,
        "rules": list(report.rule_ids),
        "findings": [finding.as_dict() for finding in new],
        "baselined": baselined,
        "stale_baseline": list(stale),
        "exit_code": exit_code,
    }
    if statistics is not None:
        document["statistics"] = statistics
    return document


def _print_statistics(statistics: Dict[str, object]) -> None:
    rows = [
        {"rule": rule_id, **counts}
        for rule_id, counts in statistics["per_rule"].items()  # type: ignore[union-attr]
    ]
    print(format_table(rows))
    print(
        "repro check: parse {parse:.3f}s, analysis {analysis:.3f}s".format(
            parse=statistics["parse_seconds"],  # type: ignore[str-format]
            analysis=statistics["analysis_seconds"],  # type: ignore[str-format]
        )
    )


def run_check(args) -> int:
    """Execute ``repro check`` for a parsed argparse namespace.

    Returns 0 when every finding is suppressed or baselined, 1 when new
    findings remain; configuration problems raise
    :class:`~repro.errors.StaticCheckError` (exit 2 via the CLI).
    """
    if args.list_rules:
        print(format_table(list_rules_rows()))
        return 0

    selected = select_rules(args.rule)
    paths = [Path(p) for p in args.paths] if args.paths else default_check_paths()
    store = None
    if getattr(args, "cache_dir", None):
        from ..session.store import ArtifactStore

        store = ArtifactStore(args.cache_dir)
    jobs = int(getattr(args, "jobs", 1) or 1)
    report = analyze(paths, rules=selected, jobs=jobs, store=store)
    findings = report.findings

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        if baseline_path is None:
            raise StaticCheckError("--write-baseline requires --baseline PATH")
        baseline = write_baseline(findings, baseline_path)
        print(
            f"repro check: wrote {baseline.total} grandfathered finding(s) "
            f"({len(baseline.entries)} fingerprints) to {baseline_path}"
        )
        return 0

    baselined = 0
    stale: List[str] = []
    new = list(findings)
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        new, baselined, stale = apply_baseline(findings, baseline)

    exit_code = 1 if new else 0
    statistics = _statistics(report, findings) if getattr(args, "statistics", False) else None
    document = _json_document(
        new,
        report=report,
        baselined=baselined,
        stale=stale,
        exit_code=exit_code,
        statistics=statistics,
    )
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        for finding in new:
            print(str(finding))
        summary = (
            f"repro check: {len(new)} new finding(s), {baselined} baselined, "
            f"{report.files_checked} file(s), {len(report.rule_ids)} rule(s)"
        )
        if report.files_cached:
            summary += (
                f", {report.files_cached} cached / {report.files_analyzed} analyzed"
            )
        print(summary)
        if statistics is not None:
            _print_statistics(statistics)
        for fingerprint in stale:
            print(
                f"repro check: stale baseline entry (already fixed): {fingerprint}",
                file=sys.stderr,
            )
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    return exit_code
