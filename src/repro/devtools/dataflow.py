"""A small forward gen-kill dataflow framework over :mod:`~repro.devtools.cfg`.

Facts are hashable values in frozensets; the join is set union (a *may*
analysis: a fact holds at a point if it holds on **some** path there).
Rules subclass :class:`GenKillAnalysis` — ``gen``/``kill`` per statement
— or override :meth:`~GenKillAnalysis.transfer` outright, and call
:func:`solve_forward` for the fixpoint.  REP010 instantiates this with
"resource handle acquired at site S is live in variable V" facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable

from .cfg import ControlFlowGraph, Statement

__all__ = ["Facts", "GenKillAnalysis", "DataflowResult", "solve_forward"]

Facts = FrozenSet[Hashable]


class GenKillAnalysis:
    """Per-statement transfer: ``out = (facts - kill) | gen``.

    ``gen``/``kill`` both see the *incoming* facts, so a kill can depend
    on which facts are currently live (e.g. kill every fact tracking the
    variable being reassigned).
    """

    def gen(self, statement: Statement, facts: Facts) -> Facts:
        return frozenset()

    def kill(self, statement: Statement, facts: Facts) -> Facts:
        return frozenset()

    def transfer(self, statement: Statement, facts: Facts) -> Facts:
        return (facts - self.kill(statement, facts)) | self.gen(statement, facts)


@dataclass
class DataflowResult:
    """Fixpoint facts at block boundaries, keyed by block id."""

    block_in: Dict[int, Facts]
    block_out: Dict[int, Facts]

    def at_exit(self, cfg: ControlFlowGraph) -> Facts:
        """Facts that may hold when the function terminates."""
        return self.block_in[cfg.exit]


def solve_forward(
    cfg: ControlFlowGraph,
    analysis: GenKillAnalysis,
    entry_facts: Facts = frozenset(),
) -> DataflowResult:
    """Iterate the may-analysis to its (monotone, finite-set) fixpoint."""
    block_in: Dict[int, Facts] = {block_id: frozenset() for block_id in cfg.blocks}
    block_out: Dict[int, Facts] = {block_id: frozenset() for block_id in cfg.blocks}
    block_in[cfg.entry] = entry_facts
    predecessors = cfg.predecessors()

    worklist = list(cfg.blocks)
    while worklist:
        block_id = worklist.pop(0)
        block = cfg.blocks[block_id]
        incoming = frozenset(block_in[cfg.entry]) if block_id == cfg.entry else frozenset()
        for pred in predecessors[block_id]:
            incoming |= block_out[pred]
        if block_id == cfg.entry:
            incoming |= entry_facts
        facts = incoming
        for statement in block.statements:
            facts = analysis.transfer(statement, facts)
        if facts != block_out[block_id] or incoming != block_in[block_id]:
            block_in[block_id] = incoming
            block_out[block_id] = facts
            for successor in block.successors:
                if successor not in worklist:
                    worklist.append(successor)
    return DataflowResult(block_in=block_in, block_out=block_out)
