"""Project-native static analysis (``repro check``).

The devtools package encodes the engine's hard-won invariants — typed
``Optional`` defaults, unbuffered ``ufunc.at`` folds, ShmRegistry-mediated
shared-memory lifecycle, non-blocking serve handlers, canonical-name
lookups, and since PR 10 whole-program properties too — as enforceable
rules.  The analysis runs in two passes:

* **pass 1** (:mod:`repro.devtools.index` + the file-scope rules): one
  parse per file produces a :class:`~repro.devtools.index.ModuleInfo`
  record and the per-file findings.  This unit is pure in the file's
  content, so ``repro check --jobs N`` fans it across worker processes
  and ``--cache-dir`` caches it content-addressed per file;
* **pass 2** (:mod:`repro.devtools.engine` + the project-scope rules):
  the records assemble into a :class:`~repro.devtools.index.ProjectIndex`
  that cross-file rules (import cycles, export drift, dead private code,
  registry coherence) consume.  File-scope rules needing control-flow
  precision build per-function CFGs (:mod:`repro.devtools.cfg`) and run
  gen-kill dataflow (:mod:`repro.devtools.dataflow`).

:mod:`repro.devtools.rules` holds one module per rule, each registering
itself via the :func:`~repro.devtools.engine.rule` or
:func:`~repro.devtools.engine.project_rule` decorator.

Findings can be suppressed inline with ``# repro: noqa[REP###]`` (or a
bare ``# repro: noqa`` for every rule) and grandfathered through a JSON
baseline file; anything not suppressed or baselined fails ``repro check``
with exit code 1.
"""

from .engine import (
    CheckReport,
    Finding,
    RuleMeta,
    all_rules,
    analyze,
    check_paths,
    check_project_sources,
    check_source,
    load_baseline,
    project_rule,
    rule,
    select_rules,
    write_baseline,
)
from .index import ModuleInfo, ProjectIndex, build_module_info
from .runner import run_check

__all__ = [
    "CheckReport",
    "Finding",
    "ModuleInfo",
    "ProjectIndex",
    "RuleMeta",
    "all_rules",
    "analyze",
    "build_module_info",
    "check_paths",
    "check_project_sources",
    "check_source",
    "load_baseline",
    "project_rule",
    "rule",
    "run_check",
    "select_rules",
    "write_baseline",
]
