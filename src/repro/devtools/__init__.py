"""Project-native static analysis (``repro check``).

The devtools package encodes the engine's hard-won invariants — typed
``Optional`` defaults, unbuffered ``ufunc.at`` folds, ShmRegistry-mediated
shared-memory lifecycle, non-blocking serve handlers, canonical-name
lookups — as enforceable AST rules.  :mod:`repro.devtools.engine` walks
files, parses each once, and dispatches every registered rule visitor
over the shared tree; :mod:`repro.devtools.rules` holds one module per
rule, each registering itself via the :func:`~repro.devtools.engine.rule`
decorator.

Findings can be suppressed inline with ``# repro: noqa[REP###]`` (or a
bare ``# repro: noqa`` for every rule) and grandfathered through a JSON
baseline file; anything not suppressed or baselined fails ``repro check``
with exit code 1.
"""

from .engine import (
    Finding,
    RuleMeta,
    all_rules,
    check_paths,
    check_source,
    load_baseline,
    rule,
    write_baseline,
)
from .runner import run_check

__all__ = [
    "Finding",
    "RuleMeta",
    "all_rules",
    "check_paths",
    "check_source",
    "load_baseline",
    "rule",
    "run_check",
    "write_baseline",
]
