"""Core of the ``repro check`` static analyser.

Two passes over the project:

* **Pass 1** parses every file exactly once, builds its
  :class:`~repro.devtools.index.ModuleInfo` record, and runs the
  *file-scope* rules on the shared tree.  This per-file unit is pure —
  it depends only on the file's bytes and the rule set — so it fans out
  across ``--jobs`` worker processes and is cached content-addressed in
  an :class:`~repro.session.store.ArtifactStore` keyed by (path, file
  SHA-256, rule-set fingerprint, engine version): warm runs re-parse
  only changed files.
* **Pass 2** assembles the per-file records into a
  :class:`~repro.devtools.index.ProjectIndex` and runs the
  *project-scope* rules (import cycles, export drift, dead private code,
  registry coherence) over it in the parent process.

Rules register with the :func:`rule` (file-scope :class:`ast.NodeVisitor`)
or :func:`project_rule` (index consumer) decorator — see
:mod:`repro.devtools.rules` — and scope themselves to path fragments so
one repo-wide walk applies each invariant exactly where it holds.
File-scope rules may request the per-function CFG/dataflow layer
(:mod:`~repro.devtools.cfg`, :mod:`~repro.devtools.dataflow`) simply by
importing it, or the whole-program index with ``needs_index=True`` (such
rules run in pass 2 and are never cached per-file).

Suppression layers, innermost first:

* ``# repro: noqa[REP002]`` (or a bare ``# repro: noqa``) on the finding
  line silences that line.  Only real comment tokens count — the marker
  inside a string literal is data.
* A JSON baseline file grandfathers known findings by fingerprint
  (``rule:path:snippet`` — line-number free, so unrelated edits above a
  grandfathered line do not un-baseline it).  Only *non-baselined*
  findings fail the check.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import StaticCheckError
from .index import ModuleInfo, ProjectIndex, build_module_info, noqa_lines

__all__ = [
    "CHECK_ENGINE_VERSION",
    "CheckReport",
    "Finding",
    "RuleMeta",
    "all_rules",
    "analyze",
    "check_paths",
    "check_file",
    "check_source",
    "check_project_sources",
    "display_path",
    "parse_source",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "baseline_from_findings",
    "ruleset_fingerprint",
    "rule",
    "project_rule",
    "select_rules",
    "Baseline",
    "Reporter",
    "ProjectReporter",
    "SEVERITIES",
]

#: Bump when analysis semantics change: invalidates every cached per-file
#: result without touching the store format version.
CHECK_ENGINE_VERSION = 2

#: Severity ladder; both levels fail the gate, the label is informational.
SEVERITIES = ("error", "warning")

_RULE_ID_RE = re.compile(r"^REP\d{3}$")

#: Directories never descended into by the file walker.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", "build", "dist", ".venv"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}:{self.path}:{' '.join(self.snippet.split())}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            snippet=str(data["snippet"]),
        )

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


@dataclass(frozen=True)
class RuleMeta:
    """A registered rule: identity, scope predicate and factory.

    ``scope`` is ``"file"`` (an :class:`ast.NodeVisitor` factory taking a
    :class:`Reporter`) or ``"project"`` (a factory taking a
    :class:`ProjectReporter`, whose instance's ``run(index)`` walks the
    :class:`~repro.devtools.index.ProjectIndex`).  File rules with
    ``needs_index`` run in pass 2 with ``(reporter, index)``.
    """

    rule_id: str
    severity: str
    description: str
    rationale: str
    factory: Callable
    applies: Callable[[str], bool]
    scope: str = "file"
    needs_index: bool = False


class Reporter:
    """Per-(file, rule) reporting handle passed to each rule visitor."""

    def __init__(self, meta: RuleMeta, path: str, lines: Sequence[str]) -> None:
        self._meta = meta
        self.path = path
        self._lines = lines
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self._lines[line - 1].strip() if 0 < line <= len(self._lines) else ""
        self.findings.append(
            Finding(
                rule=self._meta.rule_id,
                severity=self._meta.severity,
                path=self.path,
                line=line,
                col=col,
                message=message,
                snippet=snippet,
            )
        )


class ProjectReporter:
    """Reporting handle for project-scope rules.

    Project findings carry a *symbolic* snippet (the symbol, cycle or
    registry name) instead of a source line: the index does not retain
    source text, and a stable symbol makes a better baseline fingerprint
    than a line that drifts with formatting anyway.
    """

    def __init__(self, meta: RuleMeta) -> None:
        self._meta = meta
        self.findings: List[Finding] = []

    def report(
        self, path: str, line: int, message: str, *, symbol: str, col: int = 0
    ) -> None:
        self.findings.append(
            Finding(
                rule=self._meta.rule_id,
                severity=self._meta.severity,
                path=path,
                line=line,
                col=col,
                message=message,
                snippet=symbol,
            )
        )


_REGISTRY: Dict[str, RuleMeta] = {}


def _register(meta: RuleMeta) -> None:
    if not _RULE_ID_RE.match(meta.rule_id):
        raise ValueError(f"rule id must look like REP123, got {meta.rule_id!r}")
    if meta.severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {meta.severity!r}")
    if meta.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {meta.rule_id}")
    _REGISTRY[meta.rule_id] = meta


def rule(
    rule_id: str,
    *,
    severity: str,
    description: str,
    rationale: str = "",
    applies: Optional[Callable[[str], bool]] = None,
    needs_index: bool = False,
) -> Callable[[type], type]:
    """Class decorator registering an :class:`ast.NodeVisitor` as a rule.

    The decorated class must accept a single :class:`Reporter` argument
    (plus the :class:`ProjectIndex` when ``needs_index`` is set).
    ``applies`` receives the file's POSIX-normalised path and gates the
    rule per file (default: every file).
    """

    def decorate(cls: type) -> type:
        _register(
            RuleMeta(
                rule_id=rule_id,
                severity=severity,
                description=description,
                rationale=rationale,
                factory=cls,
                applies=applies or (lambda path: True),
                scope="file",
                needs_index=needs_index,
            )
        )
        return cls

    return decorate


def project_rule(
    rule_id: str,
    *,
    severity: str,
    description: str,
    rationale: str = "",
) -> Callable[[type], type]:
    """Class decorator registering a whole-program rule.

    The decorated class accepts a :class:`ProjectReporter` and exposes
    ``run(index: ProjectIndex)``; it sees the entire project at once and
    runs exactly once per check.
    """

    def decorate(cls: type) -> type:
        _register(
            RuleMeta(
                rule_id=rule_id,
                severity=severity,
                description=description,
                rationale=rationale,
                factory=cls,
                applies=lambda path: True,
                scope="project",
            )
        )
        return cls

    return decorate


def all_rules() -> Dict[str, RuleMeta]:
    """Every registered rule, importing the rule package on first use."""
    from . import rules  # noqa: F401  (import side effect: registration)

    return dict(sorted(_REGISTRY.items()))


def select_rules(rule_ids: Optional[Sequence[str]]) -> Dict[str, RuleMeta]:
    """Resolve a rule-id selection, raising on unknown ids."""
    registry = all_rules()
    if not rule_ids:
        return registry
    selected: Dict[str, RuleMeta] = {}
    for raw in rule_ids:
        rule_id = raw.strip().upper()
        if rule_id not in registry:
            raise StaticCheckError(
                f"unknown rule {raw!r}; available: {', '.join(registry)}"
            )
        selected[rule_id] = registry[rule_id]
    return dict(sorted(selected.items()))


def _split_rules(
    registry: Dict[str, RuleMeta],
) -> Tuple[Dict[str, RuleMeta], Dict[str, RuleMeta], Dict[str, RuleMeta]]:
    """(cacheable file rules, index-requiring file rules, project rules)."""
    file_rules = {
        rid: meta
        for rid, meta in registry.items()
        if meta.scope == "file" and not meta.needs_index
    }
    indexed_rules = {
        rid: meta
        for rid, meta in registry.items()
        if meta.scope == "file" and meta.needs_index
    }
    project_rules = {
        rid: meta for rid, meta in registry.items() if meta.scope == "project"
    }
    return file_rules, indexed_rules, project_rules


# ----------------------------------------------------------------------
# Per-source checking
# ----------------------------------------------------------------------
def parse_source(source: str, path: str) -> ast.Module:
    """Parse one source string, mapping syntax errors to check errors."""
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as error:
        raise StaticCheckError(f"{path}: cannot parse: {error}") from error


def _apply_noqa(
    findings: Iterable[Finding],
    suppressed: Dict[int, Optional[frozenset]],
) -> List[Finding]:
    kept = []
    for finding in findings:
        ids = suppressed.get(finding.line, False)
        if ids is False:
            kept.append(finding)
        elif ids is not None and finding.rule not in ids:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def _run_file_rules(
    tree: ast.Module,
    path: str,
    lines: Sequence[str],
    rules: Dict[str, RuleMeta],
    index: Optional[ProjectIndex] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for meta in rules.values():
        if not meta.applies(path):
            continue
        reporter = Reporter(meta, path, lines)
        if meta.needs_index:
            meta.factory(reporter, index).visit(tree)
        else:
            meta.factory(reporter).visit(tree)
        findings.extend(reporter.findings)
    return findings


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Dict[str, RuleMeta]] = None,
) -> List[Finding]:
    """Check one source string with the *file-scope* rules.

    Fixture tests pass virtual paths (``src/repro/engine/x.py``) to
    exercise path-scoped rules without touching the filesystem.  Project
    rules need a whole tree: see :func:`check_project_sources`.
    """
    normalized = Path(path).as_posix()
    registry = rules if rules is not None else all_rules()
    file_rules, _, _ = _split_rules(registry)
    tree = parse_source(source, path)
    findings = _run_file_rules(tree, normalized, source.splitlines(), file_rules)
    return _apply_noqa(findings, noqa_lines(source))


def check_project_sources(
    sources: Dict[str, str],
    rules: Optional[Dict[str, RuleMeta]] = None,
) -> List[Finding]:
    """Run the *project-scope* rules over an in-memory fixture tree."""
    registry = rules if rules is not None else all_rules()
    _, _, project_rules_ = _split_rules(registry)
    index = ProjectIndex.from_sources(
        {Path(path).as_posix(): source for path, source in sources.items()}
    )
    return _run_project_rules(index, project_rules_)


def _run_project_rules(
    index: ProjectIndex, rules: Dict[str, RuleMeta]
) -> List[Finding]:
    findings: List[Finding] = []
    for meta in rules.values():
        reporter = ProjectReporter(meta)
        meta.factory(reporter).run(index)
        for finding in reporter.findings:
            info = index.modules.get(finding.path)
            suppressed = info.noqa if info is not None else {}
            findings.extend(_apply_noqa([finding], suppressed))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def check_file(path: Path, rules: Optional[Dict[str, RuleMeta]] = None) -> List[Finding]:
    """Check one file on disk with the file-scope rules."""
    source = _read_source(path)
    return check_source(source, path=str(path), rules=rules)


def _read_source(path: Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as error:
        raise StaticCheckError(f"cannot read {path}: {error}") from error


# ----------------------------------------------------------------------
# File walking and path identity
# ----------------------------------------------------------------------
def _skippable(parts: Sequence[str]) -> bool:
    return any(part in _SKIP_DIRS or part.startswith(".") for part in parts)


def display_path(path: Path, root: Path) -> str:
    """The root-relative POSIX path findings and fingerprints carry.

    Absolute and relative invocations of the same target produce the
    same display path, so baselines written from either agree.  Files
    outside the root keep their absolute path.
    """
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Iterable[Path]:
    """Yield every ``.py`` file under ``paths``, deduplicated.

    Paths are resolved before deduplication, so passing both a directory
    and a file inside it (or the same target absolutely and relatively)
    reports each file once.  The skip rules apply to explicit file
    arguments too: a file under ``__pycache__`` or a hidden directory is
    never checked, however it was named.
    """
    base = (root or Path.cwd()).resolve()
    seen = set()
    for entry in paths:
        if entry.is_file():
            resolved = entry.resolve()
            try:
                parts = resolved.relative_to(base).parts
            except ValueError:
                parts = tuple(part for part in entry.parts if part not in ("/", ".."))
            if _skippable(parts):
                continue
            if resolved not in seen:
                seen.add(resolved)
                yield resolved
            continue
        if not entry.is_dir():
            raise StaticCheckError(f"no such file or directory: {entry}")
        resolved_dir = entry.resolve()
        for candidate in sorted(resolved_dir.rglob("*.py")):
            if _skippable(candidate.relative_to(resolved_dir).parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


# ----------------------------------------------------------------------
# Whole-program analysis (pass 1 + pass 2)
# ----------------------------------------------------------------------
@dataclass
class CheckReport:
    """Everything one ``analyze`` run produced, with its accounting."""

    findings: List[Finding]
    files_checked: int
    files_cached: int
    files_analyzed: int
    parse_seconds: float
    analysis_seconds: float
    rule_ids: Tuple[str, ...]
    jobs: int
    index: ProjectIndex


def ruleset_fingerprint(rule_ids: Sequence[str]) -> str:
    """Content fingerprint of the selected rules *and* the analyser itself.

    Hashes the devtools package sources, so any change to a rule, the
    engine, the CFG/dataflow layer or the index invalidates every cached
    per-file result without a manual version bump.
    """
    digest = hashlib.sha256()
    digest.update(f"engine:{CHECK_ENGINE_VERSION}".encode("utf-8"))
    for rule_id in sorted(rule_ids):
        digest.update(rule_id.encode("utf-8"))
    package_root = Path(__file__).resolve().parent
    for source_file in sorted(package_root.rglob("*.py")):
        if "__pycache__" in source_file.parts:
            continue
        digest.update(source_file.name.encode("utf-8"))
        try:
            digest.update(source_file.read_bytes())
        except OSError:
            pass
    return digest.hexdigest()


def _analyze_one(
    path: str, source: str, rule_ids: Sequence[str]
) -> Tuple[str, ModuleInfo, List[Finding], float, float]:
    """Pass-1 unit of work: parse once, index, run the file-scope rules.

    Top-level so it pickles into ``--jobs`` worker processes; the rule
    registry re-materialises from ids inside each worker.
    """
    registry = all_rules()
    rules = {rid: registry[rid] for rid in rule_ids}
    started = time.perf_counter()
    tree = parse_source(source, path)
    info = build_module_info(tree, source, path)
    parsed = time.perf_counter()
    findings = _apply_noqa(
        _run_file_rules(tree, path, source.splitlines(), rules), info.noqa
    )
    done = time.perf_counter()
    return path, info, findings, parsed - started, done - parsed


def _analyze_one_payload(args: Tuple[str, str, Tuple[str, ...]]):
    return _analyze_one(*args)


def analyze(
    paths: Sequence[Path],
    rules: Optional[Dict[str, RuleMeta]] = None,
    *,
    jobs: int = 1,
    store=None,
    root: Optional[Path] = None,
) -> CheckReport:
    """Run the full two-pass analysis over every python file in ``paths``.

    ``jobs > 1`` fans pass 1 across a ``ProcessPoolExecutor``; ``store``
    (an :class:`~repro.session.store.ArtifactStore` or None) caches
    per-file pass-1 results content-addressed by file SHA-256, rule-set
    fingerprint and engine version.
    """
    registry = rules if rules is not None else all_rules()
    file_rules, indexed_rules, project_rules_ = _split_rules(registry)
    base = (root or Path.cwd()).resolve()
    fingerprint = ruleset_fingerprint(tuple(registry))

    files = list(iter_python_files(paths, root=base))
    display = {file_path: display_path(file_path, base) for file_path in files}

    findings: List[Finding] = []
    infos: Dict[str, ModuleInfo] = {}
    files_cached = 0
    parse_seconds = 0.0
    analysis_seconds = 0.0
    pending: List[Tuple[Path, str, str]] = []  # (path, display, source)

    for file_path in files:
        shown = display[file_path]
        if store is not None:
            source = _read_source(file_path)
            sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
            key = store.check_key(shown, sha, fingerprint, CHECK_ENGINE_VERSION)
            cached = store.load_check(key)
            if cached is not None:
                try:
                    info = ModuleInfo.from_dict(cached["module_info"])
                    cached_findings = [
                        Finding.from_dict(entry) for entry in cached["findings"]
                    ]
                except (KeyError, TypeError, ValueError):
                    pass  # malformed payload: fall through to re-analysis
                else:
                    infos[shown] = info
                    findings.extend(cached_findings)
                    files_cached += 1
                    continue
            pending.append((file_path, shown, source))
        else:
            pending.append((file_path, shown, _read_source(file_path)))

    file_rule_ids = tuple(file_rules)
    work = [(shown, source, file_rule_ids) for _, shown, source in pending]
    if jobs > 1 and len(work) > 1:
        results = _map_parallel(work, jobs)
    else:
        results = [_analyze_one_payload(item) for item in work]

    for (file_path, shown, source), (
        _,
        info,
        file_findings,
        parse_dt,
        rules_dt,
    ) in zip(pending, results):
        infos[shown] = info
        findings.extend(file_findings)
        parse_seconds += parse_dt
        analysis_seconds += rules_dt
        if store is not None:
            sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
            key = store.check_key(shown, sha, fingerprint, CHECK_ENGINE_VERSION)
            store.save_check(
                key,
                {
                    "module_info": info.as_dict(),
                    "findings": [finding.as_dict() for finding in file_findings],
                },
            )

    # Pass 2: assemble the index, run project rules and any file rules
    # that asked for the index (re-parsed here; never cached per-file).
    pass2_started = time.perf_counter()
    index = ProjectIndex(infos)
    findings.extend(_run_project_rules(index, project_rules_))
    if indexed_rules:
        for file_path in files:
            shown = display[file_path]
            applicable = {
                rid: meta
                for rid, meta in indexed_rules.items()
                if meta.applies(shown)
            }
            if not applicable:
                continue
            source = _read_source(file_path)
            tree = parse_source(source, shown)
            info = infos.get(shown)
            suppressed = info.noqa if info is not None else noqa_lines(source)
            findings.extend(
                _apply_noqa(
                    _run_file_rules(
                        tree, shown, source.splitlines(), applicable, index=index
                    ),
                    suppressed,
                )
            )
    analysis_seconds += time.perf_counter() - pass2_started

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return CheckReport(
        findings=findings,
        files_checked=len(files),
        files_cached=files_cached,
        files_analyzed=len(pending),
        parse_seconds=parse_seconds,
        analysis_seconds=analysis_seconds,
        rule_ids=tuple(registry),
        jobs=jobs,
        index=index,
    )


def _map_parallel(work: List[Tuple[str, str, Tuple[str, ...]]], jobs: int):
    """Fan pass-1 units across a process pool, preserving input order.

    Uses the fork context where available so workers inherit the parsed
    rule registry (and the imported numpy stack the registry-aware rules
    pull in) instead of re-importing it per worker.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    chunksize = max(1, len(work) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(_analyze_one_payload, work, chunksize=chunksize))


def check_paths(
    paths: Sequence[Path],
    rules: Optional[Dict[str, RuleMeta]] = None,
) -> Tuple[List[Finding], int]:
    """Check every python file under ``paths`` (serial, no cache).

    Returns ``(findings, files_checked)``; findings are sorted by
    location for stable text/JSON output.  Thin compatibility wrapper
    over :func:`analyze`.
    """
    report = analyze(paths, rules=rules)
    return report.findings, report.files_checked


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Grandfathered finding counts keyed by :meth:`Finding.fingerprint`."""

    entries: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def load_baseline(path: Path) -> Baseline:
    """Load a baseline JSON document written by ``--write-baseline``."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise StaticCheckError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise StaticCheckError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("version") != 1:
        raise StaticCheckError(f"baseline {path}: expected a version-1 document")
    entries = document.get("entries", {})
    if not isinstance(entries, dict) or not all(
        isinstance(count, int) and count > 0 for count in entries.values()
    ):
        raise StaticCheckError(f"baseline {path}: 'entries' must map fingerprints to counts >= 1")
    return Baseline(entries=dict(entries))


def baseline_from_findings(findings: Sequence[Finding]) -> Baseline:
    entries: Dict[str, int] = {}
    for finding in findings:
        key = finding.fingerprint()
        entries[key] = entries.get(key, 0) + 1
    return Baseline(entries=dict(sorted(entries.items())))


def write_baseline(findings: Sequence[Finding], path: Path) -> Baseline:
    """Persist current findings as the new grandfathered baseline."""
    baseline = baseline_from_findings(findings)
    document = {"version": 1, "entries": baseline.entries}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return baseline


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], int, List[str]]:
    """Split findings into (new, baselined-count, stale-fingerprints).

    Stale fingerprints — baseline entries no findings matched — signal a
    fixed violation whose grandfather entry should be dropped.
    """
    budget = dict(baseline.entries)
    new: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return new, baselined, stale
