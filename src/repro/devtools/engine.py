"""Core of the ``repro check`` static analyser.

One :func:`ast.parse` per file; every registered rule walks the shared
tree through its own :class:`ast.NodeVisitor`.  Rules register with the
:func:`rule` decorator (see :mod:`repro.devtools.rules`) and scope
themselves to path fragments — ``repro/engine/`` for the fold-order rule,
``repro/serve/`` for the blocking-call rule — so one repo-wide walk
applies each invariant exactly where it holds.

Suppression layers, innermost first:

* ``# repro: noqa[REP002]`` (or a bare ``# repro: noqa``) on the finding
  line silences that line.
* A JSON baseline file grandfathers known findings by fingerprint
  (``rule:path:snippet`` — line-number free, so unrelated edits above a
  grandfathered line do not un-baseline it).  Only *non-baselined*
  findings fail the check.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import StaticCheckError

__all__ = [
    "Finding",
    "RuleMeta",
    "all_rules",
    "check_paths",
    "check_file",
    "check_source",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "rule",
]

#: Severity ladder; both levels fail the gate, the label is informational.
SEVERITIES = ("error", "warning")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>REP\d{3}(?:\s*,\s*REP\d{3})*)\])?",
    re.IGNORECASE,
)

_RULE_ID_RE = re.compile(r"^REP\d{3}$")

#: Directories never descended into by the file walker.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", "build", "dist", ".venv"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}:{self.path}:{' '.join(self.snippet.split())}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


@dataclass(frozen=True)
class RuleMeta:
    """A registered rule: identity, scope predicate and visitor factory."""

    rule_id: str
    severity: str
    description: str
    rationale: str
    factory: Callable[["Reporter"], ast.NodeVisitor]
    applies: Callable[[str], bool]


class Reporter:
    """Per-(file, rule) reporting handle passed to each rule visitor."""

    def __init__(self, meta: RuleMeta, path: str, lines: Sequence[str]) -> None:
        self._meta = meta
        self.path = path
        self._lines = lines
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self._lines[line - 1].strip() if 0 < line <= len(self._lines) else ""
        self.findings.append(
            Finding(
                rule=self._meta.rule_id,
                severity=self._meta.severity,
                path=self.path,
                line=line,
                col=col,
                message=message,
                snippet=snippet,
            )
        )


_REGISTRY: Dict[str, RuleMeta] = {}


def rule(
    rule_id: str,
    *,
    severity: str,
    description: str,
    rationale: str = "",
    applies: Optional[Callable[[str], bool]] = None,
) -> Callable[[type], type]:
    """Class decorator registering an :class:`ast.NodeVisitor` as a rule.

    The decorated class must accept a single :class:`Reporter` argument.
    ``applies`` receives the file's POSIX-normalised path and gates the
    rule per file (default: every file).
    """
    if not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id must look like REP123, got {rule_id!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {severity!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")

    def decorate(cls: type) -> type:
        _REGISTRY[rule_id] = RuleMeta(
            rule_id=rule_id,
            severity=severity,
            description=description,
            rationale=rationale,
            factory=cls,
            applies=applies or (lambda path: True),
        )
        return cls

    return decorate


def all_rules() -> Dict[str, RuleMeta]:
    """Every registered rule, importing the rule package on first use."""
    from . import rules  # noqa: F401  (import side effect: registration)

    return dict(sorted(_REGISTRY.items()))


def select_rules(rule_ids: Optional[Sequence[str]]) -> Dict[str, RuleMeta]:
    """Resolve a rule-id selection, raising on unknown ids."""
    registry = all_rules()
    if not rule_ids:
        return registry
    selected: Dict[str, RuleMeta] = {}
    for raw in rule_ids:
        rule_id = raw.strip().upper()
        if rule_id not in registry:
            raise StaticCheckError(
                f"unknown rule {raw!r}; available: {', '.join(registry)}"
            )
        selected[rule_id] = registry[rule_id]
    return dict(sorted(selected.items()))


# ----------------------------------------------------------------------
# Per-source checking
# ----------------------------------------------------------------------
def _noqa_lines(lines: Sequence[str]) -> Dict[int, Optional[frozenset]]:
    """Map 1-based line numbers to suppressed rule ids (``None`` = all)."""
    suppressed: Dict[int, Optional[frozenset]] = {}
    for number, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if not match:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressed[number] = None
        else:
            suppressed[number] = frozenset(part.strip().upper() for part in ids.split(","))
    return suppressed


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Dict[str, RuleMeta]] = None,
) -> List[Finding]:
    """Check one source string; ``path`` drives per-rule scoping.

    Fixture tests pass virtual paths (``src/repro/engine/x.py``) to
    exercise path-scoped rules without touching the filesystem.
    """
    normalized = Path(path).as_posix()
    registry = rules if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise StaticCheckError(f"{path}: cannot parse: {error}") from error
    lines = source.splitlines()
    suppressed = _noqa_lines(lines)
    findings: List[Finding] = []
    for meta in registry.values():
        if not meta.applies(normalized):
            continue
        reporter = Reporter(meta, normalized, lines)
        meta.factory(reporter).visit(tree)
        findings.extend(reporter.findings)
    kept = []
    for finding in findings:
        ids = suppressed.get(finding.line, False)
        if ids is False:
            kept.append(finding)
        elif ids is not None and finding.rule not in ids:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def check_file(path: Path, rules: Optional[Dict[str, RuleMeta]] = None) -> List[Finding]:
    """Check one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        raise StaticCheckError(f"cannot read {path}: {error}") from error
    return check_source(source, path=str(path), rules=rules)


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for entry in paths:
        if entry.is_file():
            yield entry
            continue
        if not entry.is_dir():
            raise StaticCheckError(f"no such file or directory: {entry}")
        for candidate in sorted(entry.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            yield candidate


def check_paths(
    paths: Sequence[Path],
    rules: Optional[Dict[str, RuleMeta]] = None,
) -> Tuple[List[Finding], int]:
    """Check every python file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    location for stable text/JSON output.
    """
    registry = rules if rules is not None else all_rules()
    findings: List[Finding] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        findings.extend(check_file(file_path, rules=registry))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, files_checked


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Grandfathered finding counts keyed by :meth:`Finding.fingerprint`."""

    entries: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def load_baseline(path: Path) -> Baseline:
    """Load a baseline JSON document written by ``--write-baseline``."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise StaticCheckError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise StaticCheckError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("version") != 1:
        raise StaticCheckError(f"baseline {path}: expected a version-1 document")
    entries = document.get("entries", {})
    if not isinstance(entries, dict) or not all(
        isinstance(count, int) and count > 0 for count in entries.values()
    ):
        raise StaticCheckError(f"baseline {path}: 'entries' must map fingerprints to counts >= 1")
    return Baseline(entries=dict(entries))


def baseline_from_findings(findings: Sequence[Finding]) -> Baseline:
    entries: Dict[str, int] = {}
    for finding in findings:
        key = finding.fingerprint()
        entries[key] = entries.get(key, 0) + 1
    return Baseline(entries=dict(sorted(entries.items())))


def write_baseline(findings: Sequence[Finding], path: Path) -> Baseline:
    """Persist current findings as the new grandfathered baseline."""
    baseline = baseline_from_findings(findings)
    document = {"version": 1, "entries": baseline.entries}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return baseline


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], int, List[str]]:
    """Split findings into (new, baselined-count, stale-fingerprints).

    Stale fingerprints — baseline entries no findings matched — signal a
    fixed violation whose grandfather entry should be dropped.
    """
    budget = dict(baseline.entries)
    new: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return new, baselined, stale
