"""Per-function control-flow graphs for the dataflow rules.

:func:`build_cfg` lowers one ``def`` body to basic blocks connected by
successor edges: straight-line statements share a block; ``if``/``for``/
``while``/``try``/``with``/``return``/``raise``/``break``/``continue``
split blocks and add edges.  A single virtual EXIT block terminates every
path — falling off the end, ``return``, and ``raise`` all reach it — so a
forward analysis reads "facts live at exit" off one block.

Exception edges are *explicit-flow only*: a ``raise`` statement routes to
the innermost enclosing handlers (which may decline it — the propagation
edge is kept too) and through ``finally`` blocks to EXIT; handler entries
additionally get an edge from the block *preceding* the ``try``, so facts
held at try entry reach the handler.  Implicit raises (any call can
throw) are deliberately not modelled — doing so would claim a statement
can abort after completing, mark every handle leaked without a
``finally``, and drown real findings in noise.

Branch/loop header expressions are wrapped in :class:`Synthetic` pseudo-
statements and ``with`` items in :class:`WithEnter`, so transfer
functions see every expression exactly once (visiting the raw compound
statement would walk its body a second time).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Block",
    "ControlFlowGraph",
    "Statement",
    "Synthetic",
    "WithEnter",
    "build_cfg",
]


@dataclass(frozen=True)
class Synthetic:
    """A branch/loop header expression evaluated on block entry.

    ``node`` is the test/iterator expression; ``bind`` is the loop target
    for ``for`` headers (None elsewhere); ``origin`` the compound
    statement it came from (for locations).
    """

    node: ast.expr
    origin: ast.stmt
    bind: Optional[ast.expr] = None


@dataclass(frozen=True)
class WithEnter:
    """One ``with`` item entering scope (the context manager handles exit)."""

    item: ast.withitem
    origin: ast.stmt


#: What a transfer function receives: real statements plus the pseudo ones.
Statement = Union[ast.stmt, Synthetic, WithEnter]


@dataclass
class Block:
    """A maximal straight-line statement sequence."""

    block_id: int
    statements: List[Statement] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)


@dataclass
class ControlFlowGraph:
    blocks: Dict[int, Block]
    entry: int
    exit: int

    def predecessors(self) -> Dict[int, Set[int]]:
        preds: Dict[int, Set[int]] = {block_id: set() for block_id in self.blocks}
        for block in self.blocks.values():
            for successor in block.successors:
                preds[successor].add(block.block_id)
        return preds


class _Frame:
    """One enclosing ``try``: handler entries and/or a ``finally``."""

    def __init__(self, handlers: List[int], finally_entry: Optional[int]) -> None:
        self.handlers = handlers
        self.finally_entry = finally_entry
        #: Set when a raise (or handler mismatch) routes into the finally,
        #: which then must re-raise: its end gains an unwind edge.
        self.finally_unwinds = False


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.exit_id = self._new_block().block_id
        self._loops: List[Tuple[int, int]] = []  # (continue target, break target)
        self._frames: List[_Frame] = []

    def _new_block(self) -> Block:
        block = Block(block_id=self._next_id)
        self._next_id += 1
        self.blocks[block.block_id] = block
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)

    def _unwind_target(self, skip: int = 0) -> int:
        """Where an escaping exception goes: the innermost enclosing
        ``finally`` (marking it as a re-raise path), else EXIT."""
        for frame in reversed(self._frames[: len(self._frames) - skip]):
            if frame.finally_entry is not None:
                frame.finally_unwinds = True
                return frame.finally_entry
        return self.exit_id

    def _return_target(self) -> int:
        """Where ``return`` goes: through every enclosing finally to EXIT.

        Conservatively routes to the innermost finally only (chained
        finallys connect via their own unwind edges)."""
        return self._unwind_target()

    # ------------------------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> ControlFlowGraph:
        entry = self._new_block()
        end = self._visit_body(body, entry.block_id)
        if end is not None:
            self._edge(end, self.exit_id)
        return ControlFlowGraph(blocks=self.blocks, entry=entry.block_id, exit=self.exit_id)

    def _visit_body(
        self, statements: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        for node in statements:
            if current is None:
                break  # unreachable code after return/raise/break
            current = self._visit_statement(node, current)
        return current

    def _visit_statement(self, node: ast.stmt, current: int) -> Optional[int]:
        if isinstance(node, ast.If):
            return self._visit_if(node, current)
        if isinstance(node, (ast.While,)):
            return self._visit_while(node, current)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._visit_for(node, current)
        if isinstance(node, ast.Try):
            return self._visit_try(node, current)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._visit_with(node, current)
        if isinstance(node, ast.Return):
            self.blocks[current].statements.append(node)
            self._edge(current, self._return_target())
            return None
        if isinstance(node, ast.Raise):
            self.blocks[current].statements.append(node)
            frame = self._innermost_handler_frame()
            if frame is not None:
                for handler in frame.handlers:
                    self._edge(current, handler)
            self._edge(current, self._unwind_target())
            return None
        if isinstance(node, ast.Break):
            if self._loops:
                self._edge(current, self._loops[-1][1])
            return None
        if isinstance(node, ast.Continue):
            if self._loops:
                self._edge(current, self._loops[-1][0])
            return None
        self.blocks[current].statements.append(node)
        return current

    def _innermost_handler_frame(self) -> Optional[_Frame]:
        for frame in reversed(self._frames):
            if frame.handlers:
                return frame
        return None

    def _visit_if(self, node: ast.If, current: int) -> Optional[int]:
        self.blocks[current].statements.append(Synthetic(node=node.test, origin=node))
        then_entry = self._new_block()
        self._edge(current, then_entry.block_id)
        then_end = self._visit_body(node.body, then_entry.block_id)
        if node.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry.block_id)
            else_end = self._visit_body(node.orelse, else_entry.block_id)
        else:
            else_end = current
        ends = [end for end in (then_end, else_end) if end is not None]
        if not ends:
            return None
        join = self._new_block()
        for end in ends:
            self._edge(end, join.block_id)
        return join.block_id

    def _visit_loop(
        self,
        header_stmt: Synthetic,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        current: int,
    ) -> Optional[int]:
        header = self._new_block()
        header.statements.append(header_stmt)
        self._edge(current, header.block_id)
        after = self._new_block()
        body_entry = self._new_block()
        self._edge(header.block_id, body_entry.block_id)
        self._loops.append((header.block_id, after.block_id))
        body_end = self._visit_body(body, body_entry.block_id)
        self._loops.pop()
        if body_end is not None:
            self._edge(body_end, header.block_id)
        if orelse:
            else_entry = self._new_block()
            self._edge(header.block_id, else_entry.block_id)
            else_end = self._visit_body(orelse, else_entry.block_id)
            if else_end is not None:
                self._edge(else_end, after.block_id)
        else:
            self._edge(header.block_id, after.block_id)
        return after.block_id

    def _visit_while(self, node: ast.While, current: int) -> Optional[int]:
        return self._visit_loop(
            Synthetic(node=node.test, origin=node), node.body, node.orelse, current
        )

    def _visit_for(self, node, current: int) -> Optional[int]:
        return self._visit_loop(
            Synthetic(node=node.iter, origin=node, bind=node.target),
            node.body,
            node.orelse,
            current,
        )

    def _visit_with(self, node, current: int) -> Optional[int]:
        for item in node.items:
            self.blocks[current].statements.append(WithEnter(item=item, origin=node))
        return self._visit_body(node.body, current)

    def _visit_try(self, node: ast.Try, current: int) -> Optional[int]:
        finally_entry = self._new_block() if node.finalbody else None
        handler_entries = [self._new_block() for _ in node.handlers]
        frame = _Frame(
            handlers=[block.block_id for block in handler_entries],
            finally_entry=finally_entry.block_id if finally_entry else None,
        )

        # Try body.  Exception edges are explicit-flow only: a handler is
        # entered either with the facts held *at try entry* (the body
        # aborted before binding anything new) or from an explicit
        # ``raise`` inside the body (which carries that point's facts).
        # Routing every body block's out-facts to the handlers would
        # claim a statement can abort *after* completing — the classic
        # over-approximation that flags `fd = os.open(...)` inside a
        # try as leaking through its own OSError handler.
        self._frames.append(frame)
        body_entry = self._new_block()
        self._edge(current, body_entry.block_id)
        for handler_block in handler_entries:
            self._edge(current, handler_block.block_id)
        body_end = self._visit_body(node.body, body_entry.block_id)
        if body_end is not None and node.orelse:
            body_end = self._visit_body(node.orelse, body_end)
        self._frames.pop()

        # Handlers and the else clause still run under the finally (and an
        # uncaught re-raise inside a handler unwinds outward).
        handler_frame = _Frame(handlers=[], finally_entry=frame.finally_entry)
        self._frames.append(handler_frame)
        handler_ends = []
        for handler, entry in zip(node.handlers, handler_entries):
            handler_ends.append(self._visit_body(handler.body, entry.block_id))
        self._frames.pop()
        frame.finally_unwinds = frame.finally_unwinds or handler_frame.finally_unwinds

        normal_ends = [end for end in [body_end] + handler_ends if end is not None]
        if finally_entry is None:
            if not normal_ends:
                return None
            join = self._new_block()
            for end in normal_ends:
                self._edge(end, join.block_id)
            return join.block_id

        # A handler-less try/finally still runs the finally when the body
        # aborts at entry (same explicit-flow contract as above).
        if not node.handlers:
            self._edge(current, finally_entry.block_id)
        for end in normal_ends:
            self._edge(end, finally_entry.block_id)
        finally_end = self._visit_body(node.finalbody, finally_entry.block_id)
        if finally_end is None:
            return None
        if frame.finally_unwinds:
            self._edge(finally_end, self._unwind_target())
        after = self._new_block()
        self._edge(finally_end, after.block_id)
        return after.block_id


def build_cfg(function: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> ControlFlowGraph:
    """The control-flow graph of one function's own body (nested ``def``
    statements are bindings, not inlined control flow)."""
    return _Builder().build(function.body)
