"""Pass 1 of the whole-program analyser: the :class:`ProjectIndex`.

One :func:`ast.parse` per file produces a :class:`ModuleInfo` — the
module's dotted name, top-level symbol definitions, ``__all__`` exports,
import records (with relative imports resolved against the dotted name),
every function/method definition, and conservative reference/string
tables.  A :class:`ProjectIndex` is just the collection of those per-file
records plus cross-file lookups; the cross-file rules (REP011-REP014)
consume the index instead of walking trees themselves, so the whole
project is still parsed exactly once per run.

Everything here is plain picklable/JSON-able data: per-file records ride
to ``--jobs`` workers and into the ``--cache-dir`` artifact store, and a
warm run reassembles the index from cached records without re-parsing
unchanged files.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionRecord",
    "ImportRecord",
    "ModuleInfo",
    "ProjectIndex",
    "build_module_info",
    "module_name_for",
    "noqa_lines",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>REP\d{3}(?:\s*,\s*REP\d{3})*)\])?",
    re.IGNORECASE,
)

#: String constants longer than this are not indexed (they are prose, not
#: names; the reference tables only exist to resolve identifiers).
_MAX_LITERAL = 60

#: Path anchors a display path is rooted at when deriving a dotted module
#: name; ``src`` layouts strip the anchor, the rest keep it.
_TREE_ANCHORS = ("tests", "benchmarks", "examples")


def noqa_lines(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map 1-based line numbers to suppressed rule ids (``None`` = all).

    Only real ``COMMENT`` tokens count: a ``# repro: noqa`` *inside a
    string literal* (rule fixtures, docstrings quoting the syntax) is
    data, not a suppression.  Sources that fail to tokenize fall back to
    a plain line scan — they cannot contain string-literal decoys the
    tokenizer would have distinguished anyway.
    """
    suppressed: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for number, text in enumerate(source.splitlines(), start=1):
            _record_noqa(suppressed, number, text)
        return suppressed
    for token in tokens:
        if token.type == tokenize.COMMENT:
            _record_noqa(suppressed, token.start[0], token.string)
    return suppressed


def _record_noqa(
    suppressed: Dict[int, Optional[FrozenSet[str]]], number: int, text: str
) -> None:
    match = _NOQA_RE.search(text)
    if not match:
        return
    ids = match.group("ids")
    if ids is None:
        suppressed[number] = None
    else:
        suppressed[number] = frozenset(part.strip().upper() for part in ids.split(","))


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a POSIX display path.

    ``src/repro/engine/parallel.py`` -> ``repro.engine.parallel`` (the
    last ``src`` component anchors an importable layout and is stripped);
    ``tests/test_cli.py`` -> ``tests.test_cli``.  Paths that fit neither
    shape keep their full component chain minus the suffix.
    """
    parts = [part for part in path.split("/") if part not in ("", ".")]
    if not parts:
        return ""
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src") + 1 :]
    else:
        for anchor in _TREE_ANCHORS:
            if anchor in parts:
                parts = parts[parts.index(anchor) :]
                break
        else:
            if "repro" in parts:
                parts = parts[parts.index("repro") :]
            else:
                parts = parts[-1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    parts = parts[:-1] + ([leaf] if leaf != "__init__" else [])
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionRecord:
    """One ``def``/``async def`` anywhere in a module."""

    qualname: str
    name: str
    line: int
    is_method: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "is_method": self.is_method,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionRecord":
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            is_method=bool(data["is_method"]),
        )


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, with relative levels already resolved.

    ``module`` is the dotted target (``repro.engine.pregel``); ``names``
    are the ``from X import a, b`` aliases (empty for ``import X``).
    ``scope`` distinguishes module-level imports from function-scope ones
    (the sanctioned cycle-breaking idiom); ``typing_only`` marks imports
    under ``if TYPE_CHECKING:`` which never execute at runtime.
    """

    module: str
    names: Tuple[str, ...]
    line: int
    scope: str = "toplevel"
    typing_only: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "names": list(self.names),
            "line": self.line,
            "scope": self.scope,
            "typing_only": self.typing_only,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ImportRecord":
        return cls(
            module=str(data["module"]),
            names=tuple(str(n) for n in data["names"]),  # type: ignore[union-attr]
            line=int(data["line"]),  # type: ignore[arg-type]
            scope=str(data["scope"]),
            typing_only=bool(data["typing_only"]),
        )


@dataclass(frozen=True)
class ModuleInfo:
    """Everything the cross-file rules need to know about one module."""

    path: str
    module: str
    is_test: bool
    #: Top-level name -> definition line (functions, classes, assignments).
    definitions: Dict[str, int] = field(default_factory=dict)
    #: Top-level names bound by imports -> line.
    import_bindings: Dict[str, int] = field(default_factory=dict)
    #: The ``__all__`` literal, or None when no ``__all__`` is declared.
    exports: Optional[Tuple[str, ...]] = None
    #: False when ``__all__`` exists but is built dynamically (``+=`` ...).
    exports_resolved: bool = True
    exports_line: int = 0
    imports: Tuple[ImportRecord, ...] = ()
    functions: Tuple[FunctionRecord, ...] = ()
    #: Every Name load and attribute name used anywhere in the module.
    references: FrozenSet[str] = frozenset()
    #: Short string constants (identifier-ish data: registry names, keys).
    string_literals: FrozenSet[str] = frozenset()
    #: Top-level ``NAME = {str keys}/[str elems]`` -> (values, line).
    literal_collections: Dict[str, Tuple[Tuple[str, ...], int]] = field(
        default_factory=dict
    )
    #: 1-based line -> suppressed rule ids (None = every rule).
    noqa: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "is_test": self.is_test,
            "definitions": dict(self.definitions),
            "import_bindings": dict(self.import_bindings),
            "exports": None if self.exports is None else list(self.exports),
            "exports_resolved": self.exports_resolved,
            "exports_line": self.exports_line,
            "imports": [record.as_dict() for record in self.imports],
            "functions": [record.as_dict() for record in self.functions],
            "references": sorted(self.references),
            "string_literals": sorted(self.string_literals),
            "literal_collections": {
                name: {"values": list(values), "line": line}
                for name, (values, line) in self.literal_collections.items()
            },
            "noqa": {
                str(line): None if ids is None else sorted(ids)
                for line, ids in self.noqa.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleInfo":
        exports = data["exports"]
        collections = {
            str(name): (
                tuple(str(v) for v in entry["values"]),
                int(entry["line"]),
            )
            for name, entry in dict(data["literal_collections"]).items()  # type: ignore[arg-type]
        }
        noqa = {
            int(line): None if ids is None else frozenset(str(i) for i in ids)
            for line, ids in dict(data["noqa"]).items()  # type: ignore[arg-type]
        }
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            is_test=bool(data["is_test"]),
            definitions={str(k): int(v) for k, v in dict(data["definitions"]).items()},  # type: ignore[arg-type]
            import_bindings={
                str(k): int(v) for k, v in dict(data["import_bindings"]).items()  # type: ignore[arg-type]
            },
            exports=None if exports is None else tuple(str(n) for n in exports),  # type: ignore[union-attr]
            exports_resolved=bool(data["exports_resolved"]),
            exports_line=int(data["exports_line"]),  # type: ignore[arg-type]
            imports=tuple(
                ImportRecord.from_dict(entry) for entry in data["imports"]  # type: ignore[union-attr]
            ),
            functions=tuple(
                FunctionRecord.from_dict(entry) for entry in data["functions"]  # type: ignore[union-attr]
            ),
            references=frozenset(str(n) for n in data["references"]),  # type: ignore[union-attr]
            string_literals=frozenset(str(n) for n in data["string_literals"]),  # type: ignore[union-attr]
            literal_collections=collections,
            noqa=noqa,
        )


def _is_test_path(path: str) -> bool:
    name = path.rsplit("/", 1)[-1]
    return (
        "/tests/" in path
        or path.startswith("tests/")
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of an ``ImportFrom`` within ``module``."""
    if node.level == 0:
        return node.module
    # The package containing the module: its own name for __init__ modules
    # is the module name itself; for plain modules drop the last segment.
    parts = module.split(".") if module else []
    if parts:
        parts = parts[:-1]
    hops = node.level - 1
    if hops > len(parts):
        return None
    base = parts[: len(parts) - hops] if hops else parts
    pieces = [p for p in (".".join(base), node.module or "") if p]
    return ".".join(pieces) if pieces else None


class _ReferenceCollector(ast.NodeVisitor):
    """Names loaded, attributes touched and short strings seen anywhere."""

    def __init__(self) -> None:
        self.references: set = set()
        self.strings: set = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.references.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.references.add(node.attr)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and 0 < len(node.value) <= _MAX_LITERAL:
            self.strings.add(node.value)


class _FunctionCollector(ast.NodeVisitor):
    """Every def/async def with its class-aware qualified name."""

    def __init__(self) -> None:
        self.functions: List[FunctionRecord] = []
        self._stack: List[Tuple[str, bool]] = []

    def _visit_def(self, node) -> None:
        qualname = ".".join([name for name, _ in self._stack] + [node.name])
        is_method = bool(self._stack) and self._stack[-1][1]
        self.functions.append(
            FunctionRecord(
                qualname=qualname, name=node.name, line=node.lineno, is_method=is_method
            )
        )
        self._stack.append((node.name, False))
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append((node.name, True))
        self.generic_visit(node)
        self._stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # lambdas have no name to index


class _LazyImportCollector(ast.NodeVisitor):
    """Function-scope imports (recorded, but never cycle-graph edges)."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.records: List[ImportRecord] = []
        self._depth = 0

    def _visit_def(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Import(self, node: ast.Import) -> None:
        if self._depth:
            for alias in node.names:
                self.records.append(
                    ImportRecord(
                        module=alias.name, names=(), line=node.lineno, scope="function"
                    )
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._depth:
            target = _resolve_relative(self.module, node)
            if target:
                self.records.append(
                    ImportRecord(
                        module=target,
                        names=tuple(alias.name for alias in node.names),
                        line=node.lineno,
                        scope="function",
                    )
                )


def _string_elements(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """The all-string elements/keys of a literal container, else None."""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        values = node.elts
    elif isinstance(node, ast.Dict):
        values = [key for key in node.keys if key is not None]
        if len(values) != len(node.keys):
            return None
    else:
        return None
    collected = []
    for value in values:
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            return None
        collected.append(value.value)
    return tuple(collected)


def build_module_info(
    tree: ast.Module, source: str, path: str
) -> ModuleInfo:
    """Build one module's index record from its already-parsed tree."""
    module = module_name_for(path)
    definitions: Dict[str, int] = {}
    import_bindings: Dict[str, int] = {}
    imports: List[ImportRecord] = []
    literal_collections: Dict[str, Tuple[Tuple[str, ...], int]] = {}
    exports: Optional[Tuple[str, ...]] = None
    exports_resolved = True
    exports_line = 0

    def record_target(target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Name):
            definitions.setdefault(target.id, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record_target(element, line)

    def scan_block(statements: Sequence[ast.stmt], typing_only: bool, top: bool) -> None:
        nonlocal exports, exports_resolved, exports_line
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                definitions.setdefault(node.name, node.lineno)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    import_bindings.setdefault(bound, node.lineno)
                    imports.append(
                        ImportRecord(
                            module=alias.name,
                            names=(),
                            line=node.lineno,
                            typing_only=typing_only,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(module, node)
                for alias in node.names:
                    if alias.name != "*":
                        import_bindings.setdefault(
                            alias.asname or alias.name, node.lineno
                        )
                if target:
                    imports.append(
                        ImportRecord(
                            module=target,
                            names=tuple(alias.name for alias in node.names),
                            line=node.lineno,
                            typing_only=typing_only,
                        )
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    record_target(target, node.lineno)
                if (
                    top
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    name = node.targets[0].id
                    elements = _string_elements(node.value)
                    if name == "__all__":
                        exports = elements
                        exports_resolved = elements is not None
                        exports_line = node.lineno
                    elif elements is not None:
                        literal_collections[name] = (elements, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    definitions.setdefault(node.target.id, node.lineno)
                    if top and node.value is not None:
                        name = node.target.id
                        elements = _string_elements(node.value)
                        if name == "__all__":
                            exports = elements
                            exports_resolved = elements is not None
                            exports_line = node.lineno
                        elif elements is not None:
                            literal_collections[name] = (elements, node.lineno)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                    exports_resolved = False
                    if not exports_line:
                        exports_line = node.lineno
            elif isinstance(node, ast.If):
                branch_typing = typing_only or _is_type_checking_test(node.test)
                scan_block(node.body, branch_typing, top=False)
                scan_block(node.orelse, typing_only, top=False)
            elif isinstance(node, ast.Try):
                scan_block(node.body, typing_only, top=False)
                for handler in node.handlers:
                    scan_block(handler.body, typing_only, top=False)
                scan_block(node.orelse, typing_only, top=False)
                scan_block(node.finalbody, typing_only, top=False)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                scan_block(node.body, typing_only, top=False)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                scan_block(node.body, typing_only, top=False)
                scan_block(node.orelse, typing_only, top=False)

    scan_block(tree.body, typing_only=False, top=True)

    references = _ReferenceCollector()
    references.visit(tree)
    functions = _FunctionCollector()
    functions.visit(tree)
    lazy = _LazyImportCollector(module)
    lazy.visit(tree)
    imports.extend(lazy.records)

    return ModuleInfo(
        path=path,
        module=module,
        is_test=_is_test_path(path),
        definitions=definitions,
        import_bindings=import_bindings,
        exports=exports,
        exports_resolved=exports_resolved,
        exports_line=exports_line,
        imports=tuple(imports),
        functions=tuple(functions.functions),
        references=frozenset(references.references),
        string_literals=frozenset(references.strings),
        literal_collections=literal_collections,
        noqa=noqa_lines(source),
    )


class ProjectIndex:
    """The assembled pass-1 output: every module record plus lookups."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = dict(sorted(modules.items()))
        self.by_module: Dict[str, str] = {}
        for path, info in self.modules.items():
            if info.module:
                self.by_module.setdefault(info.module, path)
        self._all_references: Optional[FrozenSet[str]] = None
        self._all_test_literals: Optional[FrozenSet[str]] = None

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectIndex":
        """Build an index from in-memory sources (fixture trees)."""
        from .engine import parse_source

        modules = {}
        for path, source in sources.items():
            tree = parse_source(source, path)
            modules[path] = build_module_info(tree, source, path)
        return cls(modules)

    def module_at(self, dotted: str) -> Optional[ModuleInfo]:
        path = self.by_module.get(dotted)
        return None if path is None else self.modules[path]

    def modules_matching(self, suffix: str) -> List[ModuleInfo]:
        """Module records whose display path ends with ``suffix``."""
        return [
            info for path, info in self.modules.items() if path.endswith(suffix)
        ]

    def library_modules(self) -> List[ModuleInfo]:
        return [
            info
            for info in self.modules.values()
            if not info.is_test and "repro/" in info.path
        ]

    def test_modules(self) -> List[ModuleInfo]:
        return [info for info in self.modules.values() if info.is_test]

    def all_references(self) -> FrozenSet[str]:
        """Every name referenced anywhere in the project (tests included),
        plus identifier-looking string literals (``getattr`` indirection)."""
        if self._all_references is None:
            seen: set = set()
            for info in self.modules.values():
                seen.update(info.references)
                seen.update(
                    literal
                    for literal in info.string_literals
                    if literal.isidentifier()
                )
            self._all_references = frozenset(seen)
        return self._all_references

    def test_string_literals(self) -> FrozenSet[str]:
        """Lower-cased string literals across every test module."""
        if self._all_test_literals is None:
            seen: set = set()
            for info in self.test_modules():
                seen.update(literal.lower() for literal in info.string_literals)
            self._all_test_literals = frozenset(seen)
        return self._all_test_literals

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProjectIndex({len(self.modules)} modules)"
