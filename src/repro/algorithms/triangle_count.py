"""Triangle counting over the partitioned-graph engine (GraphX semantics).

The computation follows GraphX's ``TriangleCount``:

1. canonicalise the graph (undirected, no self loops, no duplicates) and
   collect every vertex's neighbour-id set at its master partition;
2. reduce the per-vertex state of every **cut** vertex and ship its
   neighbour set to the edge partitions that mirror it;
3. for every canonical edge intersect the two endpoint sets, crediting both
   endpoints, then halve the per-vertex counters.

Cost-model calibration
----------------------
The paper finds that Triangle Count behaves very differently from the
Pregel-style algorithms: its execution time is driven by per-vertex state
and per-vertex/per-edge compute, correlates with the **Cut** metric and is
almost insensitive (5-10%) to the partitioner choice.  The accounting here
encodes exactly that explanation:

* the neighbour-collection and intersection shuffles are charged as bulk
  transfers whose *bytes* scale with the number of edges (partitioner
  independent), not as per-replica message envelopes;
* one reduction (message + serialisation compute) is charged per **cut
  vertex**, following the paper's Section 4 explanation;
* set construction and intersection probes carry high per-unit compute
  costs, making the algorithm compute-bound relative to PageRank.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..engine.cluster import ClusterConfig, paper_cluster
from ..engine.cost_model import CostModel, CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from .result import AlgorithmResult

__all__ = ["triangle_count", "total_triangles"]

#: Compute units per neighbour-id inserted while building adjacency sets.
_SET_BUILD_UNITS = 2.0
#: Compute units per id probed during a set intersection.
_INTERSECT_UNITS = 2.0
#: Reduction overhead (compute units) charged once per cut vertex.
_CUT_REDUCTION_UNITS = 150.0
#: Bytes per neighbour id shipped during the bulk shuffles.
_BYTES_PER_ID = 16
#: Fixed serialised per-vertex state shipped for every cut vertex during the
#: phase-2 reduction (the "per-vertex state" cost the paper attributes to
#: the Cut metric).
_CUT_STATE_BYTES = 3072


def _add_bulk_bytes(model: CostModel, report, remote_bytes: int) -> None:
    """Charge a bulk payload (bytes only) on top of the last recorded superstep."""
    record = report.supersteps[-1]
    seconds = model.network_seconds(0, 0, remote_bytes)
    record.bytes_remote += remote_bytes
    record.network_seconds += seconds
    record.total_seconds += seconds


def triangle_count(
    pgraph: PartitionedGraph,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
) -> AlgorithmResult:
    """Count triangles through every vertex of the canonicalised graph.

    ``vertex_values`` of the returned result maps every vertex to the
    number of triangles it participates in; :func:`total_triangles` sums
    them into the global count reported in Table 1.
    """
    cluster = cluster or paper_cluster()
    model = CostModel(cluster, cost_parameters)
    report = model.new_report()
    report.load_seconds = model.load_seconds(pgraph.dataset_bytes)

    routing = pgraph.routing
    num_partitions = pgraph.num_partitions

    # ------------------------------------------------------------------
    # Phase 1: canonicalise edges and collect neighbour-id sets at vertex
    # masters (GraphX collectNeighborIds).  The shuffle moves every edge
    # endpoint once, so its volume depends on the graph, not the
    # partitioner.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    neighbour_sets: Dict[int, Set[int]] = {
        int(v): set() for v in pgraph.graph.vertex_ids.tolist()
    }
    seen_canonical: Set = set()
    edges_scanned = 0
    canonical_edges = 0

    for partition in pgraph.partitions:
        pid = partition.partition_id
        src_list, dst_list = partition.edge_pairs()
        for src, dst in zip(src_list, dst_list):
            edges_scanned += 1
            partition_units[pid] += 1.0
            if src == dst:
                continue
            lo, hi = (src, dst) if src < dst else (dst, src)
            key = (lo, hi)
            if key in seen_canonical:
                continue
            seen_canonical.add(key)
            canonical_edges += 1
            neighbour_sets[lo].add(hi)
            neighbour_sets[hi].add(lo)
            partition_units[pid] += 2 * _SET_BUILD_UNITS

    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=len(neighbour_sets),
        edges_scanned=edges_scanned,
    )
    _add_bulk_bytes(model, report, 2 * canonical_edges * _BYTES_PER_ID)

    # ------------------------------------------------------------------
    # Phase 2: one per-vertex state reduction per cut vertex, shipping its
    # neighbour set to the partitions that mirror it.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    cut_vertices = 0
    shipped_bytes = 0
    for vertex, parts in routing.replicas.items():
        if len(parts) <= 1:
            continue
        cut_vertices += 1
        master = routing.master_of(vertex)
        set_size = len(neighbour_sets.get(vertex, ()))
        partition_units[master] += _CUT_REDUCTION_UNITS + set_size * _SET_BUILD_UNITS
        shipped_bytes += _CUT_STATE_BYTES + set_size * _BYTES_PER_ID
    model.record_superstep(
        report,
        superstep=1,
        partition_units=partition_units,
        messages_remote=cut_vertices,
        messages_local=0,
        active_vertices=cut_vertices,
        edges_scanned=0,
    )
    _add_bulk_bytes(model, report, shipped_bytes)

    # ------------------------------------------------------------------
    # Phase 3: per-edge set intersections, then credit both endpoints.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    double_counts: Dict[int, int] = {v: 0 for v in neighbour_sets}
    counted_targets = 0
    edges_scanned = 0
    counted: Set = set()

    for partition in pgraph.partitions:
        pid = partition.partition_id
        src_list, dst_list = partition.edge_pairs()
        for src, dst in zip(src_list, dst_list):
            if src == dst:
                continue
            lo, hi = (src, dst) if src < dst else (dst, src)
            key = (lo, hi)
            if key in counted:
                continue
            counted.add(key)
            edges_scanned += 1
            set_lo = neighbour_sets[lo]
            set_hi = neighbour_sets[hi]
            smaller, larger = (set_lo, set_hi) if len(set_lo) <= len(set_hi) else (set_hi, set_lo)
            partition_units[pid] += len(smaller) * _INTERSECT_UNITS
            common = len(smaller & larger)
            if common:
                double_counts[lo] += common
                double_counts[hi] += common
                counted_targets += 2

    model.record_superstep(
        report,
        superstep=2,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=sum(1 for c in double_counts.values() if c),
        edges_scanned=edges_scanned,
    )
    _add_bulk_bytes(model, report, counted_targets * _BYTES_PER_ID)

    per_vertex = {vertex: count // 2 for vertex, count in double_counts.items()}
    return AlgorithmResult(
        algorithm="TriangleCount",
        vertex_values=per_vertex,
        num_supersteps=report.num_supersteps,
        report=report,
    )


def total_triangles(result: AlgorithmResult) -> int:
    """Global triangle count from a :func:`triangle_count` result."""
    return sum(result.vertex_values.values()) // 3
