"""Triangle counting over the partitioned-graph engine (GraphX semantics).

The computation follows GraphX's ``TriangleCount``:

1. canonicalise the graph (undirected, no self loops, no duplicates) and
   collect every vertex's neighbour-id set at its master partition;
2. reduce the per-vertex state of every **cut** vertex and ship its
   neighbour set to the edge partitions that mirror it;
3. for every canonical edge intersect the two endpoint sets, crediting both
   endpoints, then halve the per-vertex counters.

Cost-model calibration
----------------------
The paper finds that Triangle Count behaves very differently from the
Pregel-style algorithms: its execution time is driven by per-vertex state
and per-vertex/per-edge compute, correlates with the **Cut** metric and is
almost insensitive (5-10%) to the partitioner choice.  The accounting here
encodes exactly that explanation:

* the neighbour-collection and intersection shuffles are charged as bulk
  transfers whose *bytes* scale with the number of edges (partitioner
  independent), not as per-replica message envelopes;
* one reduction (message + serialisation compute) is charged per **cut
  vertex**, following the paper's Section 4 explanation;
* set construction and intersection probes carry high per-unit compute
  costs, making the algorithm compute-bound relative to PageRank.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..engine.cluster import ClusterConfig, paper_cluster
from ..engine.cost_model import CostModel, CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..partitioning.membership import segment_arange
from .result import AlgorithmResult

__all__ = ["triangle_count", "total_triangles"]

#: Compute units per neighbour-id inserted while building adjacency sets.
_SET_BUILD_UNITS = 2.0
#: Compute units per id probed during a set intersection.
_INTERSECT_UNITS = 2.0
#: Reduction overhead (compute units) charged once per cut vertex.
_CUT_REDUCTION_UNITS = 150.0
#: Bytes per neighbour id shipped during the bulk shuffles.
_BYTES_PER_ID = 16
#: Fixed serialised per-vertex state shipped for every cut vertex during the
#: phase-2 reduction (the "per-vertex state" cost the paper attributes to
#: the Cut metric).
_CUT_STATE_BYTES = 3072


def _add_bulk_bytes(model: CostModel, report, remote_bytes: int) -> None:
    """Charge a bulk payload (bytes only) on top of the last recorded superstep."""
    record = report.supersteps[-1]
    seconds = model.network_seconds(0, 0, remote_bytes)
    record.bytes_remote += remote_bytes
    record.network_seconds += seconds
    record.total_seconds += seconds


def triangle_count(
    pgraph: PartitionedGraph,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
) -> AlgorithmResult:
    """Count triangles through every vertex of the canonicalised graph.

    ``vertex_values`` of the returned result maps every vertex to the
    number of triangles it participates in; :func:`total_triangles` sums
    them into the global count reported in Table 1.  ``vectorized``
    selects the array implementation of the three phases (identical
    per-vertex counts and superstep accounting); the scalar loops are kept
    as the reference semantics.
    """
    if vectorized:
        return _triangle_count_array(pgraph, cluster, cost_parameters)
    return _triangle_count_scalar(pgraph, cluster, cost_parameters)


def _triangle_count_scalar(
    pgraph: PartitionedGraph,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
) -> AlgorithmResult:
    """The seed per-edge/per-set implementation (reference semantics)."""
    cluster = cluster or paper_cluster()
    model = CostModel(cluster, cost_parameters)
    report = model.new_report()
    report.load_seconds = model.load_seconds(pgraph.dataset_bytes)

    routing = pgraph.routing
    num_partitions = pgraph.num_partitions

    # ------------------------------------------------------------------
    # Phase 1: canonicalise edges and collect neighbour-id sets at vertex
    # masters (GraphX collectNeighborIds).  The shuffle moves every edge
    # endpoint once, so its volume depends on the graph, not the
    # partitioner.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    neighbour_sets: Dict[int, Set[int]] = {
        int(v): set() for v in pgraph.graph.vertex_ids.tolist()
    }
    seen_canonical: Set = set()
    edges_scanned = 0
    canonical_edges = 0

    for partition in pgraph.partitions:
        pid = partition.partition_id
        src_list, dst_list = partition.edge_pairs()
        for src, dst in zip(src_list, dst_list):
            edges_scanned += 1
            partition_units[pid] += 1.0
            if src == dst:
                continue
            lo, hi = (src, dst) if src < dst else (dst, src)
            key = (lo, hi)
            if key in seen_canonical:
                continue
            seen_canonical.add(key)
            canonical_edges += 1
            neighbour_sets[lo].add(hi)
            neighbour_sets[hi].add(lo)
            partition_units[pid] += 2 * _SET_BUILD_UNITS

    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=len(neighbour_sets),
        edges_scanned=edges_scanned,
    )
    _add_bulk_bytes(model, report, 2 * canonical_edges * _BYTES_PER_ID)

    # ------------------------------------------------------------------
    # Phase 2: one per-vertex state reduction per cut vertex, shipping its
    # neighbour set to the partitions that mirror it.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    cut_vertices = 0
    shipped_bytes = 0
    for vertex, parts in routing.replicas.items():
        if len(parts) <= 1:
            continue
        cut_vertices += 1
        master = routing.master_of(vertex)
        set_size = len(neighbour_sets.get(vertex, ()))
        partition_units[master] += _CUT_REDUCTION_UNITS + set_size * _SET_BUILD_UNITS
        shipped_bytes += _CUT_STATE_BYTES + set_size * _BYTES_PER_ID
    model.record_superstep(
        report,
        superstep=1,
        partition_units=partition_units,
        messages_remote=cut_vertices,
        messages_local=0,
        active_vertices=cut_vertices,
        edges_scanned=0,
    )
    _add_bulk_bytes(model, report, shipped_bytes)

    # ------------------------------------------------------------------
    # Phase 3: per-edge set intersections, then credit both endpoints.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    double_counts: Dict[int, int] = {v: 0 for v in neighbour_sets}
    counted_targets = 0
    edges_scanned = 0
    counted: Set = set()

    for partition in pgraph.partitions:
        pid = partition.partition_id
        src_list, dst_list = partition.edge_pairs()
        for src, dst in zip(src_list, dst_list):
            if src == dst:
                continue
            lo, hi = (src, dst) if src < dst else (dst, src)
            key = (lo, hi)
            if key in counted:
                continue
            counted.add(key)
            edges_scanned += 1
            set_lo = neighbour_sets[lo]
            set_hi = neighbour_sets[hi]
            smaller, larger = (set_lo, set_hi) if len(set_lo) <= len(set_hi) else (set_hi, set_lo)
            partition_units[pid] += len(smaller) * _INTERSECT_UNITS
            common = len(smaller & larger)
            if common:
                double_counts[lo] += common
                double_counts[hi] += common
                counted_targets += 2

    model.record_superstep(
        report,
        superstep=2,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=sum(1 for c in double_counts.values() if c),
        edges_scanned=edges_scanned,
    )
    _add_bulk_bytes(model, report, counted_targets * _BYTES_PER_ID)

    per_vertex = {vertex: count // 2 for vertex, count in double_counts.items()}
    return AlgorithmResult(
        algorithm="TriangleCount",
        vertex_values=per_vertex,
        num_supersteps=report.num_supersteps,
        report=report,
    )


def _triangle_count_array(
    pgraph: PartitionedGraph,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
) -> AlgorithmResult:
    """Array implementation of the three phases.

    The canonical-edge deduplication, neighbour-set sizes and per-edge
    intersections are computed with ``np.unique``/``bincount``/one global
    ``searchsorted`` over a sorted adjacency instead of Python sets, while
    charging compute to exactly the partitions the scalar scan charged
    (the partition of each canonical edge's *first* occurrence in the
    partition-major scan order).
    """
    cluster = cluster or paper_cluster()
    model = CostModel(cluster, cost_parameters)
    report = model.new_report()
    report.load_seconds = model.load_seconds(pgraph.dataset_bytes)

    trip = pgraph.triplets()
    num_vertices = trip.num_vertices
    num_partitions = trip.num_partitions
    membership = pgraph.routing.membership

    # ------------------------------------------------------------------
    # Phase 1: canonicalise edges and size the neighbour-id sets.
    # ------------------------------------------------------------------
    partition_units = (
        np.bincount(trip.edge_pid, minlength=num_partitions).astype(np.float64) * 1.0
    )
    keep = trip.src != trip.dst
    lo_all = np.minimum(trip.src[keep], trip.dst[keep])
    hi_all = np.maximum(trip.src[keep], trip.dst[keep])
    codes = lo_all * np.int64(max(num_vertices, 1)) + hi_all
    _, first_positions = np.unique(codes, return_index=True)
    lo = lo_all[first_positions]
    hi = hi_all[first_positions]
    first_pid = trip.edge_pid[keep][first_positions]
    canonical_edges = int(lo.size)
    partition_units += (
        np.bincount(first_pid, minlength=num_partitions) * (2 * _SET_BUILD_UNITS)
    )
    #: |N(v)| in the canonical simple graph == the scalar neighbour-set sizes.
    set_sizes = np.bincount(lo, minlength=num_vertices) + np.bincount(
        hi, minlength=num_vertices
    )

    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=num_vertices,
        edges_scanned=trip.num_edges,
    )
    _add_bulk_bytes(model, report, 2 * canonical_edges * _BYTES_PER_ID)

    # ------------------------------------------------------------------
    # Phase 2: one per-vertex state reduction per cut vertex.
    # ------------------------------------------------------------------
    partition_units = np.zeros(num_partitions, dtype=np.float64)
    cut = membership.counts > 1
    cut_vertices = int(cut.sum())
    cut_masters = membership.masters[cut]
    cut_set_sizes = set_sizes[
        np.searchsorted(trip.vertex_ids, membership.vertices[cut])
    ]
    partition_units += np.bincount(
        cut_masters,
        weights=_CUT_REDUCTION_UNITS + cut_set_sizes * _SET_BUILD_UNITS,
        minlength=num_partitions,
    )
    shipped_bytes = cut_vertices * _CUT_STATE_BYTES + int(cut_set_sizes.sum()) * _BYTES_PER_ID
    model.record_superstep(
        report,
        superstep=1,
        partition_units=partition_units,
        messages_remote=cut_vertices,
        messages_local=0,
        active_vertices=cut_vertices,
        edges_scanned=0,
    )
    _add_bulk_bytes(model, report, shipped_bytes)

    # ------------------------------------------------------------------
    # Phase 3: per-edge set intersections via one sorted-adjacency probe.
    # ------------------------------------------------------------------
    partition_units = np.zeros(num_partitions, dtype=np.float64)
    if canonical_edges:
        # Sorted adjacency of the canonical simple graph, row-major keyed by
        # vertex * n + neighbour so one global searchsorted answers every
        # membership probe.
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo])
        keys = np.sort(heads * np.int64(num_vertices) + tails)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(set_sizes, out=indptr[1:])
        # Probe the smaller endpoint set of each edge (ties probe ``lo``,
        # like the scalar ``len(set_lo) <= len(set_hi)``).
        probe_lo = set_sizes[lo] <= set_sizes[hi]
        probe = np.where(probe_lo, lo, hi)
        other = np.where(probe_lo, hi, lo)
        probe_sizes = set_sizes[probe]
        partition_units += np.bincount(
            first_pid, weights=probe_sizes * _INTERSECT_UNITS, minlength=num_partitions
        )
        total_probes = int(probe_sizes.sum())
        if total_probes:
            edge_of = np.repeat(np.arange(canonical_edges, dtype=np.int64), probe_sizes)
            neighbour_keys = keys[segment_arange(indptr[probe], probe_sizes)]
            queries = (
                other[edge_of] * np.int64(num_vertices)
                + neighbour_keys % np.int64(num_vertices)
            )
            hits = np.searchsorted(keys, queries)
            found = keys[np.minimum(hits, keys.size - 1)] == queries
            common = np.bincount(edge_of[found], minlength=canonical_edges)
        else:
            common = np.zeros(canonical_edges, dtype=np.int64)
        double_counts = (
            np.bincount(lo, weights=common, minlength=num_vertices)
            + np.bincount(hi, weights=common, minlength=num_vertices)
        ).astype(np.int64)
        counted_targets = 2 * int((common > 0).sum())
    else:
        double_counts = np.zeros(num_vertices, dtype=np.int64)
        counted_targets = 0

    model.record_superstep(
        report,
        superstep=2,
        partition_units=partition_units,
        messages_remote=num_partitions,
        messages_local=num_partitions,
        active_vertices=int((double_counts > 0).sum()),
        edges_scanned=canonical_edges,
    )
    _add_bulk_bytes(model, report, counted_targets * _BYTES_PER_ID)

    per_vertex = dict(zip(trip.vertex_ids.tolist(), (double_counts // 2).tolist()))
    return AlgorithmResult(
        algorithm="TriangleCount",
        vertex_values=per_vertex,
        num_supersteps=report.num_supersteps,
        report=report,
    )


def total_triangles(result: AlgorithmResult) -> int:
    """Global triangle count from a :func:`triangle_count` result."""
    return sum(result.vertex_values.values()) // 3
