"""Degree computation expressed with the ``aggregate_messages`` primitive.

This is the "hello world" of the GraphX API and doubles as a worked example
of how to build new computations on top of the engine.
"""

from __future__ import annotations

from typing import Optional

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import aggregate_messages
from ..errors import EngineError
from .result import AlgorithmResult

__all__ = ["degree_count"]


def degree_count(
    pgraph: PartitionedGraph,
    direction: str = "out",
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
) -> AlgorithmResult:
    """Compute per-vertex in-, out- or total degree on the engine.

    ``direction`` is ``"out"``, ``"in"`` or ``"both"``.  Vertices with no
    edges in the requested direction get a degree of 0.
    """
    if direction not in ("out", "in", "both"):
        raise EngineError(f"direction must be 'out', 'in' or 'both', got {direction!r}")

    def send_message(src, src_value, dst, dst_value):
        messages = []
        if direction in ("out", "both"):
            messages.append((src, 1))
        if direction in ("in", "both"):
            messages.append((dst, 1))
        return messages

    values = {int(v): 0 for v in pgraph.graph.vertex_ids.tolist()}
    merged, report = aggregate_messages(
        pgraph,
        vertex_values=values,
        send_message=send_message,
        merge_message=lambda a, b: a + b,
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=0.5,
    )
    values.update(merged)
    return AlgorithmResult(
        algorithm=f"DegreeCount[{direction}]",
        vertex_values=values,
        num_supersteps=report.num_supersteps,
        report=report,
    )
