"""Degree computation expressed with the ``aggregate_messages`` primitive.

This is the "hello world" of the GraphX API and doubles as a worked example
of how to build new computations on top of the engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.messaging import ArrayMessageKernel
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import aggregate_messages
from ..errors import EngineError
from .result import AlgorithmResult

__all__ = ["degree_count", "DegreeKernel"]


class DegreeKernel(ArrayMessageKernel):
    """Vectorised degree messages: one ``1`` per edge endpoint in the
    requested direction (``both`` interleaves ``src``-then-``dst`` per edge,
    exactly like the scalar send order), merged with ``np.add``."""

    merge_ufunc = np.add
    merge_identity = 0
    message_dtype = np.int64

    def __init__(self, direction: str) -> None:
        self.direction = direction

    def encode(self, vertex_ids, values):
        return None  # degree messages do not read vertex state

    def send_message_array(self, src_idx, dst_idx, state):
        num_edges = src_idx.size
        if self.direction == "out":
            positions = np.arange(num_edges, dtype=np.int64)
            targets = src_idx
        elif self.direction == "in":
            positions = np.arange(num_edges, dtype=np.int64)
            targets = dst_idx
        else:  # both: (src, 1) then (dst, 1) for every edge
            positions = np.repeat(np.arange(num_edges, dtype=np.int64), 2)
            targets = np.empty(2 * num_edges, dtype=np.int64)
            targets[0::2] = src_idx
            targets[1::2] = dst_idx
        return positions, targets, np.ones(targets.size, dtype=np.int64)

    def decode_messages(self, target_ids, messages):
        return dict(zip(target_ids.tolist(), messages.tolist()))


def degree_count(
    pgraph: PartitionedGraph,
    direction: str = "out",
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
) -> AlgorithmResult:
    """Compute per-vertex in-, out- or total degree on the engine.

    ``direction`` is ``"out"``, ``"in"`` or ``"both"``.  Vertices with no
    edges in the requested direction get a degree of 0.
    """
    if direction not in ("out", "in", "both"):
        raise EngineError(f"direction must be 'out', 'in' or 'both', got {direction!r}")

    def send_message(src, src_value, dst, dst_value):
        messages = []
        if direction in ("out", "both"):
            messages.append((src, 1))
        if direction in ("in", "both"):
            messages.append((dst, 1))
        return messages

    values = {int(v): 0 for v in pgraph.graph.vertex_ids.tolist()}
    merged, report = aggregate_messages(
        pgraph,
        vertex_values=values,
        send_message=send_message,
        merge_message=lambda a, b: a + b,
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=0.5,
        message_kernel=DegreeKernel(direction) if vectorized else None,
    )
    values.update(merged)
    return AlgorithmResult(
        algorithm=f"DegreeCount[{direction}]",
        vertex_values=values,
        num_supersteps=report.num_supersteps,
        report=report,
    )
