"""Common result type returned by every graph algorithm."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..engine.cost_model import SimulationReport

__all__ = ["AlgorithmResult"]


@dataclass
class AlgorithmResult:
    """Final vertex values plus the simulated execution report of one run."""

    algorithm: str
    vertex_values: Dict[int, Any]
    num_supersteps: int
    report: SimulationReport

    @property
    def simulated_seconds(self) -> float:
        """End-to-end simulated execution time of the run."""
        return self.report.total_seconds

    def value_of(self, vertex: int) -> Any:
        """Final value of one vertex (raises ``KeyError`` if unknown)."""
        return self.vertex_values[vertex]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlgorithmResult({self.algorithm!r}, vertices={len(self.vertex_values)}, "
            f"supersteps={self.num_supersteps}, seconds={self.simulated_seconds:.4f})"
        )
