"""Common result type returned by every graph algorithm."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..engine.cost_model import SimulationReport

__all__ = ["AlgorithmResult"]


@dataclass
class AlgorithmResult:
    """Final vertex values plus the execution record of one run.

    ``report`` is the simulated cluster accounting and is only produced by
    the ``reference`` backend; array backends leave it ``None``.
    ``backend`` records which execution backend produced the values and
    ``wall_seconds`` the measured wall-clock time of the run (filled in by
    :func:`repro.algorithms.registry.run_algorithm`).
    """

    algorithm: str
    vertex_values: Dict[int, Any]
    num_supersteps: int
    report: Optional[SimulationReport] = None
    backend: str = "reference"
    wall_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """End-to-end simulated execution time (0.0 without a cost model)."""
        if self.report is None:
            return 0.0
        return self.report.total_seconds

    def value_of(self, vertex: int) -> Any:
        """Final value of one vertex (raises ``KeyError`` if unknown)."""
        return self.vertex_values[vertex]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlgorithmResult({self.algorithm!r}, backend={self.backend!r}, "
            f"vertices={len(self.vertex_values)}, "
            f"supersteps={self.num_supersteps}, seconds={self.simulated_seconds:.4f})"
        )
