"""Connected components via label propagation (GraphX semantics).

Every vertex starts labelled with its own id; labels propagate along edges
in both directions and every vertex keeps the minimum label it has seen.
At convergence each (weakly) connected component is labelled with its
lowest vertex id, which is exactly what GraphX's ``connectedComponents``
returns.  The active set shrinks as labels converge, which is the effect
that makes fine-grained partitioning pay off in the paper's Figure 4.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.messaging import ArrayMessageKernel
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import pregel
from .result import AlgorithmResult

__all__ = ["connected_components", "ConnectedComponentsKernel"]

_EDGE_UNITS = 1.0
_VERTEX_UNITS = 0.5


class ConnectedComponentsKernel(ArrayMessageKernel):
    """Vectorised label propagation: the smaller endpoint label crosses the
    edge (at most one message per triplet, like the scalar ``elif``),
    merged with ``np.minimum``."""

    merge_ufunc = np.minimum
    merge_identity = np.iinfo(np.int64).max
    message_dtype = np.int64

    def encode(self, vertex_ids, values):
        return np.array([int(values[v]) for v in vertex_ids.tolist()], dtype=np.int64)

    def decode(self, vertex_ids, state):
        return dict(zip(vertex_ids.tolist(), state.tolist()))

    def send_message_array(self, src_idx, dst_idx, state):
        src_labels = state[src_idx]
        dst_labels = state[dst_idx]
        forward = src_labels < dst_labels
        backward = dst_labels < src_labels
        positions = np.flatnonzero(forward | backward)
        targets = np.where(forward, dst_idx, src_idx)[positions]
        labels = np.where(forward, src_labels, dst_labels)[positions]
        return positions, targets, labels

    def apply_messages(self, state, target_idx, messages):
        state[target_idx] = np.minimum(state[target_idx], messages)
        return state


def connected_components(
    pgraph: PartitionedGraph,
    max_iterations: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
    parallel_workers: Optional[int] = None,
) -> AlgorithmResult:
    """Label every vertex with the smallest vertex id of its weak component.

    ``max_iterations`` caps the number of label-propagation supersteps; the
    default (``None``) runs to the fixpoint.  The paper's evaluation caps
    PageRank and Connected Components at 10 iterations, which the
    experiment harness passes explicitly.
    """
    iterations = max_iterations if max_iterations is not None else pgraph.graph.num_vertices + 1

    initial_values: Dict[int, int] = {int(v): int(v) for v in pgraph.graph.vertex_ids.tolist()}

    def vertex_program(vertex, value, message):
        if message is None or math.isinf(message):
            return value
        return min(value, int(message))

    def send_message(src, src_value, dst, dst_value):
        messages = []
        if src_value < dst_value:
            messages.append((dst, src_value))
        elif dst_value < src_value:
            messages.append((src, dst_value))
        return messages

    def merge_message(a, b):
        return a if a < b else b

    result = pregel(
        pgraph,
        initial_values=initial_values,
        initial_message=math.inf,
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=merge_message,
        max_iterations=iterations,
        active_direction="either",
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=_EDGE_UNITS,
        vertex_compute_units=_VERTEX_UNITS,
        message_kernel=ConnectedComponentsKernel() if vectorized else None,
        parallel_workers=parallel_workers,
    )

    return AlgorithmResult(
        algorithm="ConnectedComponents",
        vertex_values=dict(result.vertex_values),
        num_supersteps=result.num_supersteps,
        report=result.report,
    )
