"""The paper's four evaluation algorithms plus degree counting, on the engine."""

from .connected_components import connected_components
from .degrees import degree_count
from .pagerank import pagerank, reference_pagerank
from .registry import (
    ALGORITHM_NAMES,
    algorithm_metric_of_interest,
    canonical_algorithm_name,
    run_algorithm,
)
from .result import AlgorithmResult
from .shortest_paths import (
    LandmarkMatrix,
    build_landmark_matrix,
    choose_landmarks,
    multi_source_distances,
    shortest_paths,
)
from .triangle_count import total_triangles, triangle_count

__all__ = [
    "AlgorithmResult",
    "ALGORITHM_NAMES",
    "LandmarkMatrix",
    "algorithm_metric_of_interest",
    "build_landmark_matrix",
    "canonical_algorithm_name",
    "choose_landmarks",
    "connected_components",
    "degree_count",
    "multi_source_distances",
    "pagerank",
    "reference_pagerank",
    "run_algorithm",
    "shortest_paths",
    "total_triangles",
    "triangle_count",
]
