"""Name-based access to the paper's four evaluation algorithms.

The registry hides the per-algorithm calling conventions behind a single
``run_algorithm(name, pgraph, ...)`` entry point so the experiment harness
can sweep algorithms uniformly.  PageRank and Connected Components run for
10 iterations by default (the paper's setting); SSSP picks 5 deterministic
landmark vertices unless told otherwise.

``backend`` selects the execution strategy: the default (``None`` or
``"reference"``) runs the paper-faithful Pregel simulator below; any other
name is resolved through :mod:`repro.backends` (e.g. ``"vectorized"`` for
the CSR/numpy kernels).  Every result records which backend produced it
and the measured wall-clock time of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import EngineError
from .connected_components import connected_components
from .pagerank import pagerank
from .result import AlgorithmResult
from .shortest_paths import choose_landmarks, shortest_paths
from .triangle_count import triangle_count

__all__ = [
    "ALGORITHM_NAMES",
    "canonical_algorithm_name",
    "run_algorithm",
    "run_reference_algorithm",
    "algorithm_metric_of_interest",
]

#: The paper's four algorithms, with their abbreviations.
ALGORITHM_NAMES: List[str] = ["PR", "CC", "TR", "SSSP"]

#: Long-form spellings accepted wherever an algorithm name is parsed.
_ALGORITHM_ALIASES: Dict[str, str] = {
    "PAGERANK": "PR",
    "CONNECTEDCOMPONENTS": "CC",
    "TRIANGLECOUNT": "TR",
    "TRIANGLES": "TR",
    "SHORTESTPATHS": "SSSP",
}


def canonical_algorithm_name(name: str) -> str:
    """Resolve an algorithm name case-insensitively to its abbreviation.

    Accepts the paper's abbreviations (``"pr"`` -> ``"PR"``) and the
    long-form aliases (``"PageRank"``, ``"Triangles"``, ...).
    """
    key = str(name).upper()
    key = _ALGORITHM_ALIASES.get(key, key)
    if key not in ALGORITHM_NAMES:
        raise EngineError(
            f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}"
        )
    return key

#: The partitioning metric Section 4 found most predictive for each algorithm.
_METRIC_OF_INTEREST: Dict[str, str] = {
    "PR": "comm_cost",
    "CC": "comm_cost",
    "TR": "cut",
    "SSSP": "comm_cost",
}


def algorithm_metric_of_interest(name: str) -> str:
    """The metric the paper correlates against runtime for this algorithm."""
    key = name.upper()
    if key not in _METRIC_OF_INTEREST:
        raise EngineError(f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}")
    return _METRIC_OF_INTEREST[key]


def run_algorithm(
    name: str,
    pgraph: PartitionedGraph,
    num_iterations: int = 10,
    landmarks: Optional[List[int]] = None,
    landmark_seed: int = 7,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    backend: Optional[str] = None,
    engine_workers: Optional[int] = None,
) -> AlgorithmResult:
    """Run one of the paper's algorithms by abbreviation (PR, CC, TR, SSSP).

    ``backend`` picks the execution strategy (``"reference"`` by default;
    see :mod:`repro.backends` for the registry).  The backend layer stamps
    every result with its name and measured wall-clock time.
    ``engine_workers >= 2`` fans the reference backend's Pregel supersteps
    out across a shared-memory process pool (bit-identical results; TR and
    non-Pregel backends ignore it).
    """
    from ..backends import get_backend

    return get_backend(backend or "reference").run(
        name,
        pgraph,
        num_iterations=num_iterations,
        landmarks=landmarks,
        landmark_seed=landmark_seed,
        cluster=cluster,
        cost_parameters=cost_parameters,
        engine_workers=engine_workers,
    )


def run_reference_algorithm(
    name: str,
    pgraph: PartitionedGraph,
    num_iterations: int = 10,
    landmarks: Optional[List[int]] = None,
    landmark_seed: int = 7,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    engine_workers: Optional[int] = None,
) -> AlgorithmResult:
    """The simulator execution path behind the ``reference`` backend.

    ``engine_workers`` is forwarded to the Pregel-based algorithms (PR, CC,
    SSSP); triangle counting's aggregate phases stay serial.
    """
    key = name.upper()
    if key == "PR":
        return pagerank(
            pgraph,
            num_iterations=num_iterations,
            cluster=cluster,
            cost_parameters=cost_parameters,
            parallel_workers=engine_workers,
        )
    if key == "CC":
        return connected_components(
            pgraph,
            max_iterations=num_iterations,
            cluster=cluster,
            cost_parameters=cost_parameters,
            parallel_workers=engine_workers,
        )
    if key == "TR":
        return triangle_count(pgraph, cluster=cluster, cost_parameters=cost_parameters)
    if key == "SSSP":
        chosen = landmarks or choose_landmarks(pgraph, count=1, seed=landmark_seed)
        return shortest_paths(
            pgraph,
            landmarks=chosen,
            cluster=cluster,
            cost_parameters=cost_parameters,
            parallel_workers=engine_workers,
        )
    raise EngineError(f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}")
