"""Single-source shortest paths to a set of landmarks (GraphX ``ShortestPaths``).

Every vertex ends up with a map ``{landmark: hop distance}`` containing the
landmarks it can reach by following edge direction.  As in GraphX, messages
flow from edge destinations back to sources, so the distance of ``v`` to a
landmark ``l`` is the length of the shortest directed path ``v -> ... -> l``.

The paper evaluates this algorithm with 5 randomly chosen source vertices
per dataset; :func:`choose_landmarks` reproduces that selection
deterministically from a seed.

Two serving-oriented extensions live here as well:

* :func:`multi_source_distances` runs the *forward* orientation — seed
  vertices act as sources and distances propagate along edge direction —
  for any number of sources in a **single** Pregel run.  This is the
  frontier sweep the ``repro serve`` batching scheduler coalesces
  concurrent point queries into.
* :func:`build_landmark_matrix` combines one backward and one forward
  sweep over a landmark set into a :class:`LandmarkMatrix`, whose
  triangle-inequality :meth:`~LandmarkMatrix.estimate` answers
  point-to-point distance queries in O(landmarks) without touching the
  engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.messaging import ArrayMessageKernel
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import pregel
from ..errors import EngineError
from .result import AlgorithmResult

__all__ = [
    "shortest_paths",
    "multi_source_distances",
    "choose_landmarks",
    "build_landmark_matrix",
    "LandmarkMatrix",
    "ShortestPathsKernel",
    "MultiSourceShortestPathsKernel",
]

_EDGE_UNITS = 1.0
_VERTEX_UNITS = 0.5


def _merge_maps(left: Dict[int, int], right: Dict[int, int]) -> Dict[int, int]:
    """Key-wise minimum of two landmark->distance maps."""
    merged = dict(left)
    for landmark, distance in right.items():
        if landmark not in merged or distance < merged[landmark]:
            merged[landmark] = distance
    return merged


def _increment(distances: Dict[int, int]) -> Dict[int, int]:
    return {landmark: distance + 1 for landmark, distance in distances.items()}


class ShortestPathsKernel(ArrayMessageKernel):
    """Vectorised landmark maps: one float row per vertex (``inf`` marks an
    absent landmark entry), candidate rows ``dst + 1`` sent backwards along
    edges that improve the source, merged with elementwise ``np.minimum``."""

    merge_ufunc = np.minimum
    merge_identity = np.inf
    message_dtype = np.float64

    def __init__(self, landmarks: List[int]) -> None:
        self.landmarks = [int(v) for v in landmarks]
        self.message_width = len(self.landmarks)

    def encode(self, vertex_ids, values):
        state = np.full((vertex_ids.size, len(self.landmarks)), np.inf)
        column = {landmark: j for j, landmark in enumerate(self.landmarks)}
        for i, v in enumerate(vertex_ids.tolist()):
            for landmark, distance in values[v].items():
                state[i, column[landmark]] = float(distance)
        return state

    def decode(self, vertex_ids, state):
        landmarks = self.landmarks
        return {
            int(v): {
                landmarks[j]: int(row[j]) for j in np.flatnonzero(np.isfinite(row))
            }
            for v, row in zip(vertex_ids.tolist(), state)
        }

    def send_message_array(self, src_idx, dst_idx, state):
        candidates = state[dst_idx] + 1.0
        improving = (candidates < state[src_idx]).any(axis=1)
        positions = np.flatnonzero(improving)
        return positions, src_idx[positions], candidates[positions]

    def apply_messages(self, state, target_idx, messages):
        state[target_idx] = np.minimum(state[target_idx], messages)
        return state


class MultiSourceShortestPathsKernel(ShortestPathsKernel):
    """The forward orientation of :class:`ShortestPathsKernel`: candidate
    rows ``src + 1`` travel *along* edge direction to destinations that
    improve, so row entries are ``d(source -> v)`` instead of
    ``d(v -> landmark)``.  Encoding, merging and decoding are inherited."""

    def send_message_array(self, src_idx, dst_idx, state):
        candidates = state[src_idx] + 1.0
        improving = (candidates < state[dst_idx]).any(axis=1)
        positions = np.flatnonzero(improving)
        return positions, dst_idx[positions], candidates[positions]


def shortest_paths(
    pgraph: PartitionedGraph,
    landmarks: Iterable[int],
    max_iterations: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
    parallel_workers: Optional[int] = None,
) -> AlgorithmResult:
    """Compute hop distances from every vertex to each landmark it can reach."""
    landmark_list = [int(v) for v in landmarks]
    if not landmark_list:
        raise EngineError("at least one landmark vertex is required")
    known = set(pgraph.graph.vertex_ids.tolist())
    unknown = [v for v in landmark_list if v not in known]
    if unknown:
        raise EngineError(f"landmarks not present in the graph: {unknown}")

    iterations = max_iterations if max_iterations is not None else pgraph.graph.num_vertices + 1
    landmark_set = set(landmark_list)

    initial_values: Dict[int, Dict[int, int]] = {
        int(v): ({int(v): 0} if int(v) in landmark_set else {})
        for v in pgraph.graph.vertex_ids.tolist()
    }

    def vertex_program(vertex, value, message):
        if not message:
            return value
        return _merge_maps(value, message)

    def send_message(src, src_value, dst, dst_value):
        if not dst_value:
            return ()
        candidate = _increment(dst_value)
        if _merge_maps(candidate, src_value) != src_value:
            return ((src, candidate),)
        return ()

    result = pregel(
        pgraph,
        initial_values=initial_values,
        initial_message={},
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=_merge_maps,
        max_iterations=iterations,
        active_direction="either",
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=_EDGE_UNITS,
        vertex_compute_units=_VERTEX_UNITS,
        message_kernel=ShortestPathsKernel(landmark_list) if vectorized else None,
        parallel_workers=parallel_workers,
    )

    return AlgorithmResult(
        algorithm="ShortestPaths",
        vertex_values=dict(result.vertex_values),
        num_supersteps=result.num_supersteps,
        report=result.report,
    )


def multi_source_distances(
    pgraph: PartitionedGraph,
    sources: Iterable[int],
    max_iterations: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
    parallel_workers: Optional[int] = None,
) -> AlgorithmResult:
    """Hop distances *from* every source vertex, all in one Pregel run.

    The result's ``vertex_values`` map each vertex ``v`` to
    ``{source: d(source -> v)}`` for the sources that reach it, so a
    point query ``d(u -> v)`` reads ``vertex_values[v].get(u)``.  Any
    number of sources share one frontier sweep — this is the primitive
    the serving layer's batching scheduler coalesces concurrent SSSP
    requests into, and running it with sources ``[s]`` N times is
    value-identical to one run with sources ``[s1, ..., sN]``.

    Duplicate sources are collapsed (first occurrence wins the ordering).
    """
    seen: Dict[int, None] = {}
    for v in sources:
        seen.setdefault(int(v), None)
    source_list = list(seen)
    if not source_list:
        raise EngineError("at least one source vertex is required")
    known = set(pgraph.graph.vertex_ids.tolist())
    unknown = [v for v in source_list if v not in known]
    if unknown:
        raise EngineError(f"sources not present in the graph: {unknown}")

    iterations = max_iterations if max_iterations is not None else pgraph.graph.num_vertices + 1
    source_set = set(source_list)

    initial_values: Dict[int, Dict[int, int]] = {
        int(v): ({int(v): 0} if int(v) in source_set else {})
        for v in pgraph.graph.vertex_ids.tolist()
    }

    def vertex_program(vertex, value, message):
        if not message:
            return value
        return _merge_maps(value, message)

    def send_message(src, src_value, dst, dst_value):
        if not src_value:
            return ()
        candidate = _increment(src_value)
        if _merge_maps(candidate, dst_value) != dst_value:
            return ((dst, candidate),)
        return ()

    result = pregel(
        pgraph,
        initial_values=initial_values,
        initial_message={},
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=_merge_maps,
        max_iterations=iterations,
        active_direction="either",
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=_EDGE_UNITS,
        vertex_compute_units=_VERTEX_UNITS,
        message_kernel=MultiSourceShortestPathsKernel(source_list) if vectorized else None,
        parallel_workers=parallel_workers,
    )

    return AlgorithmResult(
        algorithm="MultiSourceSSSP",
        vertex_values=dict(result.vertex_values),
        num_supersteps=result.num_supersteps,
        report=result.report,
    )


@dataclass
class LandmarkMatrix:
    """Dense landmark-distance matrices for triangle-inequality estimates.

    ``to_landmark[i, j]`` is ``d(vertex_ids[i] -> landmarks[j])`` and
    ``from_landmark[j, i]`` is ``d(landmarks[j] -> vertex_ids[i])``
    (``inf`` marks unreachable).  :meth:`estimate` answers a point query
    with the best landmark detour ``d(u -> l) + d(l -> v)`` — an upper
    bound on the true directed distance that is *exact* whenever either
    endpoint is itself a landmark.
    """

    landmarks: List[int]
    vertex_ids: np.ndarray = field(repr=False)
    to_landmark: np.ndarray = field(repr=False)
    from_landmark: np.ndarray = field(repr=False)

    def index_of(self, vertex: int) -> int:
        """Dense row index of ``vertex`` (:class:`EngineError` if unknown)."""
        position = int(np.searchsorted(self.vertex_ids, int(vertex)))
        if position >= self.vertex_ids.size or int(self.vertex_ids[position]) != int(vertex):
            raise EngineError(f"vertex {vertex!r} is not in the graph")
        return position

    def estimate(self, source: int, target: int) -> Optional[int]:
        """Upper-bound hop distance ``d(source -> target)`` via the best
        landmark detour, or None when no landmark links the pair."""
        if int(source) == int(target):
            self.index_of(source)
            return 0
        via = self.to_landmark[self.index_of(source)] + self.from_landmark[:, self.index_of(target)]
        best = float(via.min()) if via.size else float("inf")
        return None if not np.isfinite(best) else int(best)

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the two distance matrices."""
        return int(self.to_landmark.nbytes + self.from_landmark.nbytes)


def _distance_matrix(
    vertex_ids: np.ndarray, landmarks: List[int], values: Dict[int, Dict[int, int]]
) -> np.ndarray:
    """A dense ``(num_vertices, num_landmarks)`` matrix from per-vertex maps."""
    column = {landmark: j for j, landmark in enumerate(landmarks)}
    matrix = np.full((vertex_ids.size, len(landmarks)), np.inf)
    for i, v in enumerate(vertex_ids.tolist()):
        for landmark, distance in values.get(v, {}).items():
            matrix[i, column[landmark]] = float(distance)
    return matrix


def build_landmark_matrix(
    pgraph: PartitionedGraph,
    landmarks: Iterable[int],
    max_iterations: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
) -> LandmarkMatrix:
    """Precompute the :class:`LandmarkMatrix` for ``landmarks``.

    One backward sweep (:func:`shortest_paths`) yields every vertex's
    distance *to* each landmark; one forward sweep
    (:func:`multi_source_distances`) yields each landmark's distance to
    every vertex.  Two engine runs total, regardless of landmark count.
    """
    landmark_list = [int(v) for v in landmarks]
    vertex_ids = pgraph.graph.vertex_ids
    to_values = shortest_paths(
        pgraph,
        landmark_list,
        max_iterations=max_iterations,
        cluster=cluster,
        cost_parameters=cost_parameters,
        vectorized=vectorized,
    ).vertex_values
    from_values = multi_source_distances(
        pgraph,
        landmark_list,
        max_iterations=max_iterations,
        cluster=cluster,
        cost_parameters=cost_parameters,
        vectorized=vectorized,
    ).vertex_values
    return LandmarkMatrix(
        landmarks=landmark_list,
        vertex_ids=vertex_ids,
        to_landmark=_distance_matrix(vertex_ids, landmark_list, to_values),
        from_landmark=_distance_matrix(vertex_ids, landmark_list, from_values).T.copy(),
    )


def choose_landmarks(
    pgraph_or_graph, count: int = 5, seed: Optional[int] = 7
) -> List[int]:
    """Deterministically sample landmark vertices, as the paper's SSSP setup does.

    ``seed=None`` selects the default seed (7), mirroring
    :meth:`Session.landmarks(seed=None) <repro.session.Session.landmarks>`;
    a ``count`` below 1 is a configuration error, not an empty sample.
    """
    if count < 1:
        raise EngineError(f"landmark count must be >= 1, got {count}")
    graph = getattr(pgraph_or_graph, "graph", pgraph_or_graph)
    vertices = graph.vertex_ids.tolist()
    if not vertices:
        raise EngineError("cannot choose landmarks from an empty graph")
    rng = random.Random(7 if seed is None else seed)
    count = min(count, len(vertices))
    return sorted(rng.sample(vertices, count))
