"""Single-source shortest paths to a set of landmarks (GraphX ``ShortestPaths``).

Every vertex ends up with a map ``{landmark: hop distance}`` containing the
landmarks it can reach by following edge direction.  As in GraphX, messages
flow from edge destinations back to sources, so the distance of ``v`` to a
landmark ``l`` is the length of the shortest directed path ``v -> ... -> l``.

The paper evaluates this algorithm with 5 randomly chosen source vertices
per dataset; :func:`choose_landmarks` reproduces that selection
deterministically from a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.messaging import ArrayMessageKernel
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import pregel
from ..errors import EngineError
from .result import AlgorithmResult

__all__ = ["shortest_paths", "choose_landmarks", "ShortestPathsKernel"]

_EDGE_UNITS = 1.0
_VERTEX_UNITS = 0.5


def _merge_maps(left: Dict[int, int], right: Dict[int, int]) -> Dict[int, int]:
    """Key-wise minimum of two landmark->distance maps."""
    merged = dict(left)
    for landmark, distance in right.items():
        if landmark not in merged or distance < merged[landmark]:
            merged[landmark] = distance
    return merged


def _increment(distances: Dict[int, int]) -> Dict[int, int]:
    return {landmark: distance + 1 for landmark, distance in distances.items()}


class ShortestPathsKernel(ArrayMessageKernel):
    """Vectorised landmark maps: one float row per vertex (``inf`` marks an
    absent landmark entry), candidate rows ``dst + 1`` sent backwards along
    edges that improve the source, merged with elementwise ``np.minimum``."""

    merge_ufunc = np.minimum
    merge_identity = np.inf
    message_dtype = np.float64

    def __init__(self, landmarks: List[int]) -> None:
        self.landmarks = [int(v) for v in landmarks]
        self.message_width = len(self.landmarks)

    def encode(self, vertex_ids, values):
        state = np.full((vertex_ids.size, len(self.landmarks)), np.inf)
        column = {landmark: j for j, landmark in enumerate(self.landmarks)}
        for i, v in enumerate(vertex_ids.tolist()):
            for landmark, distance in values[v].items():
                state[i, column[landmark]] = float(distance)
        return state

    def decode(self, vertex_ids, state):
        landmarks = self.landmarks
        return {
            int(v): {
                landmarks[j]: int(row[j]) for j in np.flatnonzero(np.isfinite(row))
            }
            for v, row in zip(vertex_ids.tolist(), state)
        }

    def send_message_array(self, src_idx, dst_idx, state):
        candidates = state[dst_idx] + 1.0
        improving = (candidates < state[src_idx]).any(axis=1)
        positions = np.flatnonzero(improving)
        return positions, src_idx[positions], candidates[positions]

    def apply_messages(self, state, target_idx, messages):
        state[target_idx] = np.minimum(state[target_idx], messages)
        return state


def shortest_paths(
    pgraph: PartitionedGraph,
    landmarks: Iterable[int],
    max_iterations: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
) -> AlgorithmResult:
    """Compute hop distances from every vertex to each landmark it can reach."""
    landmark_list = [int(v) for v in landmarks]
    if not landmark_list:
        raise EngineError("at least one landmark vertex is required")
    known = set(pgraph.graph.vertex_ids.tolist())
    unknown = [v for v in landmark_list if v not in known]
    if unknown:
        raise EngineError(f"landmarks not present in the graph: {unknown}")

    iterations = max_iterations if max_iterations is not None else pgraph.graph.num_vertices + 1
    landmark_set = set(landmark_list)

    initial_values: Dict[int, Dict[int, int]] = {
        int(v): ({int(v): 0} if int(v) in landmark_set else {})
        for v in pgraph.graph.vertex_ids.tolist()
    }

    def vertex_program(vertex, value, message):
        if not message:
            return value
        return _merge_maps(value, message)

    def send_message(src, src_value, dst, dst_value):
        if not dst_value:
            return ()
        candidate = _increment(dst_value)
        if _merge_maps(candidate, src_value) != src_value:
            return ((src, candidate),)
        return ()

    result = pregel(
        pgraph,
        initial_values=initial_values,
        initial_message={},
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=_merge_maps,
        max_iterations=iterations,
        active_direction="either",
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=_EDGE_UNITS,
        vertex_compute_units=_VERTEX_UNITS,
        message_kernel=ShortestPathsKernel(landmark_list) if vectorized else None,
    )

    return AlgorithmResult(
        algorithm="ShortestPaths",
        vertex_values=dict(result.vertex_values),
        num_supersteps=result.num_supersteps,
        report=result.report,
    )


def choose_landmarks(pgraph_or_graph, count: int = 5, seed: int = 7) -> List[int]:
    """Deterministically sample landmark vertices, as the paper's SSSP setup does."""
    graph = getattr(pgraph_or_graph, "graph", pgraph_or_graph)
    vertices = graph.vertex_ids.tolist()
    if not vertices:
        raise EngineError("cannot choose landmarks from an empty graph")
    rng = random.Random(seed)
    count = min(count, len(vertices))
    return sorted(rng.sample(vertices, count))
