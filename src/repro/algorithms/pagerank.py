"""Static PageRank over the partitioned-graph engine.

Mirrors GraphX's ``staticPageRank``: every vertex stays active and the
update rule

    rank_v  <-  reset + (1 - reset) * sum_{u -> v} rank_u / outDegree_u

runs for a fixed number of iterations (the paper uses 10).  Ranks are not
normalised, matching GraphX semantics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.messaging import ArrayMessageKernel
from ..engine.partitioned_graph import PartitionedGraph
from ..engine.pregel import pregel
from ..errors import EngineError
from .result import AlgorithmResult

__all__ = ["pagerank", "reference_pagerank", "PageRankKernel"]

#: Compute units charged per edge triplet (rank contribution is one multiply/add).
_EDGE_UNITS = 1.0
#: Compute units charged per vertex-program invocation.
_VERTEX_UNITS = 1.0


class PageRankKernel(ArrayMessageKernel):
    """Vectorised rank-contribution messages: ``rank / out_degree`` along
    every out-edge, merged with ``np.add``.

    The state array holds the ranks; the (constant) out-degrees are kept on
    the kernel and re-attached in :meth:`decode` so the decoded values are
    the scalar path's ``(rank, degree)`` tuples.
    """

    merge_ufunc = np.add
    merge_identity = 0.0
    message_dtype = np.float64
    # Every out-edge of a positive-degree vertex sends every superstep, so
    # the fold plan and routing counters are superstep-invariant.
    static_message_structure = True

    def __init__(self, reset_prob: float) -> None:
        self.reset_prob = reset_prob
        self.damping = 1.0 - reset_prob
        self._degrees: Optional[np.ndarray] = None

    def encode(self, vertex_ids, values):
        ids = vertex_ids.tolist()
        self._degrees = np.array([int(values[v][1]) for v in ids], dtype=np.int64)
        return np.array([float(values[v][0]) for v in ids], dtype=np.float64)

    def decode(self, vertex_ids, state):
        return {
            int(v): (float(rank), int(degree))
            for v, rank, degree in zip(
                vertex_ids.tolist(), state.tolist(), self._degrees.tolist()
            )
        }

    def send_message_array(self, src_idx, dst_idx, state):
        degrees = self._degrees[src_idx]
        positions = np.flatnonzero(degrees > 0)
        sending = src_idx[positions]
        return positions, dst_idx[positions], state[sending] / self._degrees[sending]

    def apply_messages_all(self, state, target_idx, messages):
        # Non-receivers see the algorithm's default message of 0.0.
        dense = np.zeros(state.size, dtype=np.float64)
        dense[target_idx] = messages
        return self.reset_prob + self.damping * dense


def pagerank(
    pgraph: PartitionedGraph,
    num_iterations: int = 10,
    reset_prob: float = 0.15,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    vectorized: bool = True,
    parallel_workers: Optional[int] = None,
) -> AlgorithmResult:
    """Run static PageRank for ``num_iterations`` supersteps.

    Returns an :class:`AlgorithmResult` whose ``vertex_values`` map each
    vertex to its (unnormalised) rank.  ``vectorized`` selects the engine's
    array-native superstep path (bit-identical results; the scalar loop is
    kept as the reference semantics), and ``parallel_workers >= 2`` fans the
    vectorized supersteps out across a shared-memory process pool — again
    bit-identical (see :mod:`repro.engine.parallel`).
    """
    if num_iterations < 1:
        raise EngineError("num_iterations must be >= 1")
    if not 0.0 < reset_prob < 1.0:
        raise EngineError("reset_prob must be in (0, 1)")

    out_degrees = pgraph.graph.out_degrees()
    initial_values: Dict[int, Tuple[float, int]] = {
        v: (1.0, out_degrees[v]) for v in out_degrees
    }

    damping = 1.0 - reset_prob

    def vertex_program(vertex, value, message):
        rank, degree = value
        if message is None:
            return value  # superstep 0: keep the initial rank
        return (reset_prob + damping * message, degree)

    def send_message(src, src_value, dst, dst_value):
        rank, degree = src_value
        if degree == 0:
            return ()
        return ((dst, rank / degree),)

    def merge_message(a, b):
        return a + b

    result = pregel(
        pgraph,
        initial_values=initial_values,
        initial_message=None,
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=merge_message,
        max_iterations=num_iterations,
        active_direction="either",
        cluster=cluster,
        cost_parameters=cost_parameters,
        edge_compute_units=_EDGE_UNITS,
        vertex_compute_units=_VERTEX_UNITS,
        always_active=True,
        default_message=0.0,
        message_kernel=PageRankKernel(reset_prob) if vectorized else None,
        parallel_workers=parallel_workers,
    )

    ranks = {vertex: value[0] for vertex, value in result.vertex_values.items()}
    return AlgorithmResult(
        algorithm="PageRank",
        vertex_values=ranks,
        num_supersteps=result.num_supersteps,
        report=result.report,
    )


def reference_pagerank(
    graph,
    num_iterations: int = 10,
    reset_prob: float = 0.15,
) -> Dict[int, float]:
    """Single-machine reference implementation used by the test suite.

    Computes the same unnormalised update rule as :func:`pagerank` directly
    on the edge list, with no partitioning or engine involved.
    """
    out_degrees = graph.out_degrees()
    ranks = {v: 1.0 for v in out_degrees}
    damping = 1.0 - reset_prob
    for _ in range(num_iterations):
        contributions = {v: 0.0 for v in ranks}
        for src, dst in graph.edge_pairs():
            degree = out_degrees[src]
            if degree:
                contributions[dst] += ranks[src] / degree
        ranks = {v: reset_prob + damping * contributions[v] for v in ranks}
    return ranks
